//! The `mrinv` command-line front end, shared by every binary.
//!
//! ```text
//! mrinv invert --input a.txt --output inv.txt [--nodes 4] [--nb 200]
//!              [--backend in-process|tcp:<n>] [--sched barrier|pipelined]
//!              [--trace-out trace.json] [--metrics-json metrics.json]
//!              [--metrics-prom metrics.prom] [--progress]
//!              [--workdir DIR] [--checkpoint] [--resume] [--kill-after-job K]
//!              [--connect ADDR --tenant NAME]
//! mrinv lu     --input a.txt --l l.txt --u u.txt [same flags as invert]
//! mrinv solve  --input a.txt --rhs b.txt --output x.txt [same flags]
//! mrinv gen    --order 512 --output a.txt [--seed 42]
//! mrinv tune   [--out tune.spec]
//! mrinv serve  [--listen 127.0.0.1:7171] [--nodes 4] [--max-queue 64]
//! mrinv worker --connect <addr> --worker-id <n>
//! ```
//!
//! All three compute subcommands are projections of the one
//! [`Request`] API: `invert`/`lu`/`solve` build a request against a
//! local simulated cluster, or — with `--connect ADDR` — ship the same
//! request to a running `mrinv serve` instance as tenant `--tenant`
//! (default `cli`), sharing its factor cache with every other client.
//!
//! `--backend tcp:<n>` runs every task attempt in one of `n` real
//! `mrinv worker` processes (spawned next to this binary as
//! `mrinv-worker`) instead of in-process threads; task descriptors and
//! DFS traffic travel over loopback TCP, and a worker that dies
//! mid-attempt is replaced and the attempt retried. Results are
//! bit-identical across backends.
//!
//! `--sched pipelined` switches the simulated timeline to event-driven
//! execution: the shuffle streams map outputs as they commit and idle
//! fast slots steal straggling tasks, shrinking wave makespans on skewed
//! clusters. The default is the paper's per-wave barrier. Outputs are
//! bit-identical across scheduling modes.
//!
//! Matrices use the text format of the paper's `a.txt` (a `rows cols`
//! header line, then whitespace-separated values; see
//! `mrinv_matrix::io`). The `solve` right-hand sides ride the same
//! format: each **column** of `--rhs` is one right-hand side, and the
//! solution columns land in `--output` in the same order.
//!
//! The human-readable run summary goes to **stderr**; machine-readable
//! output is opt-in: `--metrics-json` writes the [`crate::RunReport`]
//! (including per-wave straggler analytics and the cost-model audit) as
//! JSON, `--metrics-prom` writes the labeled metric registry (task
//! latency histograms, per-node utilization, kernel GFLOP/s) in
//! Prometheus text exposition format, and `--trace-out` writes a
//! Chrome/Perfetto `trace_events` file of the whole pipeline on the
//! simulated clock — open it at `ui.perfetto.dev` or `chrome://tracing`.
//! Any of these flags may be `-` for stdout. Passing any of them enables
//! per-task tracing and the labeled registry for the run (off otherwise,
//! at zero cost); `--metrics-prom` and `--metrics-json` also turn on the
//! kernel engine's per-backend perf counters. `--progress` prints a live
//! one-line jobs/ETA meter to stderr while the pipeline runs.
//!
//! `tune` calibrates the packed GEMM engine on this machine (the
//! thorough probe profile: MC×KC blocking grid, serial/parallel
//! crossover, and a block-size throughput sweep) and prints ready-to-use
//! settings to stdout: an `MRINV_GEMM_TUNE=...` spec for the kernel and a
//! recommended MapReduce block size for `--nb`. With `--out FILE` the
//! spec is also written to `FILE`, usable as `MRINV_GEMM_TUNE=file:FILE`
//! (which re-probes and rewrites the cache if the file ever goes
//! missing or stale). Note the tuned-KC rounding caveat in
//! `mrinv_matrix::kernel::tune`: non-default specs trade bitwise seed
//! identity for speed.
//!
//! `--checkpoint` records a job manifest under `--workdir` so a killed
//! pipeline can be resumed with `--resume`. The DFS is in-memory, so the
//! crash/resume demo is single-process: `--checkpoint --kill-after-job K
//! --resume` kills the driver after K jobs and then resumes from the
//! manifest in the same invocation.
//!
//! `serve` starts the multi-tenant inversion service
//! ([`crate::service`]) on `--listen` and blocks; `worker` is the TCP
//! backend's worker-process entry point (the standalone `mrinv-worker`
//! binary is a shim over it, kept because the backend spawns workers by
//! that file name).

use std::process::exit;
use std::sync::Arc;

use mrinv_mapreduce::{
    chrome_trace_json, Cluster, ClusterConfig, MrError, SchedulingMode, TcpWorkers,
    TcpWorkersConfig,
};
use mrinv_matrix::io::{decode_text, encode_text};
use mrinv_matrix::norms::inversion_residual;
use mrinv_matrix::random::random_well_conditioned;
use mrinv_matrix::Matrix;

use crate::client::ServiceClient;
use crate::error::{CoreError, Result};
use crate::request::{Outcome, Request};
use crate::service::{ServerHandle, ServiceConfig};
use crate::{Checkpoint, InversionConfig, RunId, RunReport};

struct Opts {
    command: String,
    input: Option<String>,
    output: Option<String>,
    rhs: Option<String>,
    l_out: Option<String>,
    u_out: Option<String>,
    trace_out: Option<String>,
    metrics_json: Option<String>,
    metrics_prom: Option<String>,
    progress: bool,
    nodes: usize,
    nb: usize,
    order: usize,
    seed: u64,
    workdir: String,
    checkpoint: bool,
    resume: bool,
    kill_after: Option<u64>,
    backend: Backend,
    scheduling: SchedulingMode,
    connect: Option<String>,
    tenant: String,
    listen: String,
    max_queue: usize,
    worker_id: Option<usize>,
}

/// Execution backend selection (`--backend`).
enum Backend {
    /// Task attempts run on threads inside this process (default).
    InProcess,
    /// Task attempts ship to `n` spawned `mrinv-worker` processes over
    /// TCP (`--backend tcp:<n>`).
    Tcp(usize),
}

impl Opts {
    /// Checkpoint mode implied by the flags: `--resume` alone replays an
    /// existing manifest; `--checkpoint` or `--kill-after-job` record one
    /// (the kill implies recording so the single-process crash demo has a
    /// manifest to come back to).
    fn mode(&self) -> Checkpoint {
        if self.resume && self.kill_after.is_none() {
            Checkpoint::Resume
        } else if self.checkpoint || self.kill_after.is_some() {
            Checkpoint::Enabled
        } else {
            Checkpoint::Disabled
        }
    }

    /// Applies the run-placement flags to a request.
    fn place<'a>(&self, req: Request<'a>, run: &RunId) -> Request<'a> {
        match self.mode() {
            Checkpoint::Disabled => req.workdir(run),
            Checkpoint::Enabled => req.checkpoint(run),
            Checkpoint::Resume => req.resume(run),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  mrinv invert --input a.txt --output inv.txt [--nodes N] [--nb NB] [--backend in-process|tcp:W] [--sched barrier|pipelined] [--trace-out T.json] [--metrics-json M.json] [--metrics-prom M.prom] [--progress] [--workdir DIR] [--checkpoint] [--resume] [--kill-after-job K] [--connect ADDR --tenant NAME]\n  mrinv lu --input a.txt --l l.txt --u u.txt [same flags as invert]\n  mrinv solve --input a.txt --rhs b.txt --output x.txt [same flags as invert]\n  mrinv gen --order N --output a.txt [--seed S]\n  mrinv tune [--out FILE]\n  mrinv serve [--listen ADDR] [--nodes N] [--max-queue Q]\n  mrinv worker --connect <addr> --worker-id <n>"
    );
    exit(2)
}

fn parse(args: Vec<String>) -> Opts {
    let mut opts = Opts {
        command: String::new(),
        input: None,
        output: None,
        rhs: None,
        l_out: None,
        u_out: None,
        trace_out: None,
        metrics_json: None,
        metrics_prom: None,
        progress: false,
        nodes: 4,
        nb: 200,
        order: 0,
        seed: 42,
        workdir: "mrinv/cli".to_string(),
        checkpoint: false,
        resume: false,
        kill_after: None,
        backend: Backend::InProcess,
        scheduling: SchedulingMode::Barrier,
        connect: None,
        tenant: "cli".to_string(),
        listen: "127.0.0.1:0".to_string(),
        max_queue: 64,
        worker_id: None,
    };
    let mut it = args.into_iter();
    opts.command = it.next().unwrap_or_else(|| usage());
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--input" => opts.input = Some(val()),
            "--output" => opts.output = Some(val()),
            "--out" => opts.output = Some(val()),
            "--rhs" => opts.rhs = Some(val()),
            "--l" => opts.l_out = Some(val()),
            "--u" => opts.u_out = Some(val()),
            "--trace-out" => opts.trace_out = Some(val()),
            "--metrics-json" => opts.metrics_json = Some(val()),
            "--metrics-prom" => opts.metrics_prom = Some(val()),
            "--progress" => opts.progress = true,
            "--nodes" => opts.nodes = val().parse().unwrap_or_else(|_| usage()),
            "--nb" => opts.nb = val().parse().unwrap_or_else(|_| usage()),
            "--order" => opts.order = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--workdir" => opts.workdir = val(),
            "--checkpoint" => opts.checkpoint = true,
            "--resume" => opts.resume = true,
            "--kill-after-job" => opts.kill_after = Some(val().parse().unwrap_or_else(|_| usage())),
            "--connect" => opts.connect = Some(val()),
            "--tenant" => opts.tenant = val(),
            "--listen" => opts.listen = val(),
            "--max-queue" => opts.max_queue = val().parse().unwrap_or_else(|_| usage()),
            "--worker-id" => opts.worker_id = Some(val().parse().unwrap_or_else(|_| usage())),
            "--backend" => {
                let v = val();
                opts.backend = match v.as_str() {
                    "in-process" => Backend::InProcess,
                    tcp if tcp.starts_with("tcp:") => {
                        Backend::Tcp(tcp[4..].parse().unwrap_or_else(|_| usage()))
                    }
                    _ => usage(),
                };
            }
            "--sched" => {
                opts.scheduling = match val().as_str() {
                    "barrier" => SchedulingMode::Barrier,
                    "pipelined" => SchedulingMode::Pipelined,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
    }
    opts
}

fn read_matrix(path: &str) -> Matrix {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot read {path}: {e}");
        exit(1)
    });
    decode_text(&text).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot parse {path}: {e}");
        exit(1)
    })
}

fn write_matrix(path: &str, m: &Matrix) {
    std::fs::write(path, encode_text(m)).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot write {path}: {e}");
        exit(1)
    });
}

/// Splits a text matrix into its columns (one right-hand side each).
fn rhs_columns(b: &Matrix) -> Vec<Vec<f64>> {
    (0..b.cols())
        .map(|j| (0..b.rows()).map(|i| b[(i, j)]).collect())
        .collect()
}

/// Packs solution vectors back into a matrix of columns.
fn solutions_matrix(solutions: &[Vec<f64>]) -> Matrix {
    let n = solutions.first().map_or(0, Vec::len);
    let mut m = Matrix::zeros(n, solutions.len());
    for (j, x) in solutions.iter().enumerate() {
        for (i, &v) in x.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    m
}

/// Writes `content` to `path`, or to stdout when `path` is `-`.
fn write_output(path: &str, content: &str, what: &str) {
    if path == "-" {
        println!("{content}");
    } else {
        std::fs::write(path, content).unwrap_or_else(|e| {
            eprintln!("mrinv: cannot write {what} to {path}: {e}");
            exit(1)
        });
        eprintln!("mrinv: {what} -> {path}");
    }
}

/// Builds the cluster, with per-task tracing and the labeled metric
/// registry on when any observability output was requested. Metrics
/// output also enables the kernel engine's per-backend perf counters
/// (process-wide, so the exported GFLOP/s covers the real GEMM work).
fn build_cluster(opts: &Opts) -> Cluster {
    let wants_metrics = opts.metrics_json.is_some() || opts.metrics_prom.is_some();
    let mut cfg = ClusterConfig::medium(opts.nodes);
    cfg.tracing = opts.trace_out.is_some() || wants_metrics;
    cfg.observability = wants_metrics;
    cfg.progress = opts.progress;
    cfg.scheduling = opts.scheduling;
    if wants_metrics {
        mrinv_matrix::kernel::perf::set_enabled(true);
    }
    let mut cluster = Cluster::new(cfg);
    if let Backend::Tcp(workers) = opts.backend {
        if workers == 0 {
            eprintln!("mrinv: --backend tcp:<n> needs at least one worker");
            exit(2);
        }
        // The worker binary ships alongside this one.
        let worker_bin = std::env::current_exe()
            .map(|p| p.with_file_name("mrinv-worker"))
            .unwrap_or_else(|e| {
                eprintln!("mrinv: cannot locate mrinv-worker: {e}");
                exit(1)
            });
        let backend =
            TcpWorkers::spawn(TcpWorkersConfig::new(workers, worker_bin)).unwrap_or_else(|e| {
                eprintln!("mrinv: cannot start tcp workers: {e}");
                exit(1)
            });
        backend.attach_dfs(cluster.dfs.clone());
        cluster.set_backend(Arc::new(backend));
        cluster.set_registry(Arc::new(crate::exec_registry()));
        eprintln!("mrinv: tcp backend up with {workers} worker process(es)");
    }
    if let Some(k) = opts.kill_after {
        cluster.faults.kill_driver_after(k);
    }
    cluster
}

/// Turns a driver kill into a resume when `--resume` was also given: the
/// manifest left by the first attempt makes the retry a prefix restore.
/// The kill knob fires once and disarms, so the retry runs to completion.
fn retry_after_kill(
    result: Result<Outcome>,
    opts: &Opts,
    retry: impl FnOnce() -> Result<Outcome>,
) -> Result<Outcome> {
    match result {
        Err(CoreError::MapReduce(MrError::DriverKilled { after_jobs })) if opts.resume => {
            eprintln!("mrinv: driver killed after {after_jobs} job(s); resuming from the manifest");
            retry()
        }
        other => other,
    }
}

/// One-line checkpoint-restore summary for resumed runs.
fn report_restored(report: &RunReport) {
    if report.restored_jobs > 0 {
        eprintln!(
            "  resumed from manifest: {} job(s) restored, {:.1} simulated s saved",
            report.restored_jobs, report.restored_sim_secs
        );
    }
}

/// Emits the opt-in machine-readable outputs for a finished run.
fn emit_observability(opts: &Opts, cluster: &Cluster, report: &RunReport) {
    if let Some(path) = &opts.trace_out {
        let json = chrome_trace_json(&cluster.trace.events());
        write_output(path, &json, "chrome trace");
    }
    if let Some(path) = &opts.metrics_json {
        let json = serde_json::to_string_pretty(report).unwrap_or_else(|e| {
            eprintln!("mrinv: cannot serialize metrics: {e}");
            exit(1)
        });
        write_output(path, &json, "metrics");
    }
    if let Some(path) = &opts.metrics_prom {
        let text = crate::obs::full_snapshot(cluster).prometheus_text();
        write_output(path, &text, "prometheus metrics");
    }
    if let Some(audit) = &report.audit {
        eprintln!(
            "  cost model: {} task(s) audited, max |residual| {:.4} (mean {:.4}), \
             {} flagged over {:.0}% threshold{}",
            audit.tasks,
            audit.max_abs_residual,
            audit.mean_abs_residual,
            audit.flagged.len(),
            audit.threshold * 100.0,
            if audit.within_threshold {
                ""
            } else {
                " [MODEL DRIFT]"
            }
        );
    }
    if let Some(analytics) = &report.analytics {
        let ratio = analytics.worst_straggler_ratio();
        if ratio > 1.0 {
            eprintln!(
                "  straggler ratio (max/median, worst wave): {ratio:.2}; \
                 lost work from retries: {:.1} simulated s over {} retried attempts",
                analytics.lost_task_secs, analytics.retried_attempts
            );
        }
    }
}

/// `mrinv tune`: calibrates the packed GEMM engine on this machine and
/// prints ready-to-paste settings — an `MRINV_GEMM_TUNE` spec plus the
/// recommended MapReduce block size for `--nb`. Human-readable progress
/// goes to stderr; the two settings lines go to stdout so they can be
/// scripted (`eval "$(mrinv tune 2>/dev/null | head -1)"`).
fn run_tune(opts: &Opts) {
    use mrinv_matrix::kernel::tune::{calibrate, format_spec, recommend_nb, CalibrateOpts};
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = rayon::current_num_threads();
    eprintln!(
        "mrinv: calibrating the packed GEMM engine ({cores} core(s) detected, \
         {threads} pool thread(s)); this takes a few seconds..."
    );
    let p = calibrate(&CalibrateOpts::thorough());
    eprintln!("  blocking: mc={} kc={} nc={}", p.mc, p.kc, p.nc);
    eprintln!(
        "  serial/parallel crossover: {} multiply-adds{}",
        p.par_min_madds,
        if threads > 1 {
            ""
        } else {
            " (single-thread pool: crossover probe skipped, compiled default kept)"
        }
    );
    let (nb, curve) = recommend_nb(&p, 3);
    eprintln!("  block-size sweep, serial packed GFLOP/s per candidate nb:");
    for (c_nb, gf) in &curve {
        eprintln!(
            "    nb={c_nb:>4}  {gf:6.2}{}",
            if *c_nb == nb { "  <- recommended" } else { "" }
        );
    }
    let spec = format_spec(&p);
    println!("MRINV_GEMM_TUNE={spec}");
    println!("recommended --nb {nb}");
    if let Some(path) = &opts.output {
        std::fs::write(path, format!("{spec}\n")).unwrap_or_else(|e| {
            eprintln!("mrinv: cannot write tune spec to {path}: {e}");
            exit(1)
        });
        eprintln!("mrinv: tune spec -> {path} (use MRINV_GEMM_TUNE=file:{path})");
    }
}

/// `mrinv serve`: starts the multi-tenant service and blocks forever.
/// The bound address (useful with `--listen 127.0.0.1:0`) is printed to
/// stdout as `listening on <addr>` so scripts can scrape it.
fn run_serve(opts: &Opts) {
    let mut cfg = ClusterConfig::medium(opts.nodes);
    // Tenant/request metrics are the service's flight recorder; always on.
    cfg.observability = true;
    cfg.scheduling = opts.scheduling;
    let cluster = Arc::new(Cluster::new(cfg));
    let service = ServiceConfig {
        addr: opts.listen.clone(),
        max_queue_per_tenant: opts.max_queue,
    };
    let handle = ServerHandle::start(cluster, service).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot start service: {e}");
        exit(1)
    });
    println!("listening on {}", handle.addr());
    eprintln!(
        "mrinv: serving {} simulated node(s), per-tenant queue limit {}",
        opts.nodes, opts.max_queue
    );
    loop {
        std::thread::park();
    }
}

/// Routes a compute subcommand to a remote `mrinv serve` instance.
fn run_remote(opts: &Opts, addr: &str) {
    let a = opts
        .input
        .as_deref()
        .map(read_matrix)
        .unwrap_or_else(|| usage());
    let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
    let mut client = ServiceClient::connect(addr, &opts.tenant).unwrap_or_else(|e| {
        eprintln!("mrinv: {e}");
        exit(1)
    });
    let reply = match opts.command.as_str() {
        "invert" => client.invert(&a, &cfg),
        "lu" => client.lu(&a, &cfg),
        "solve" => {
            let rhs = opts
                .rhs
                .as_deref()
                .map(read_matrix)
                .unwrap_or_else(|| usage());
            client.solve(&a, &rhs_columns(&rhs), &cfg)
        }
        _ => usage(),
    };
    let reply = reply.unwrap_or_else(|e| {
        eprintln!("mrinv: {e}");
        exit(1)
    });
    eprintln!(
        "mrinv: served by {addr} as tenant {}: {} jobs, {:.1} simulated s{}",
        opts.tenant,
        reply.jobs,
        reply.sim_secs,
        if reply.cache_hit {
            " (factor-cache hit)"
        } else {
            ""
        }
    );
    match opts.command.as_str() {
        "invert" => {
            let output = opts.output.as_deref().unwrap_or_else(|| usage());
            let inverse = reply.inverse.as_ref().unwrap_or_else(|| {
                eprintln!("mrinv: server returned no inverse");
                exit(1)
            });
            write_matrix(output, inverse);
        }
        "lu" => {
            let (Some(l_out), Some(u_out)) = (&opts.l_out, &opts.u_out) else {
                usage()
            };
            let f = reply.factors.as_ref().unwrap_or_else(|| {
                eprintln!("mrinv: server returned no factors");
                exit(1)
            });
            write_matrix(l_out, &f.l);
            write_matrix(u_out, &f.u);
        }
        "solve" => {
            let output = opts.output.as_deref().unwrap_or_else(|| usage());
            write_matrix(output, &solutions_matrix(&reply.solutions));
        }
        _ => unreachable!(),
    }
}

/// Worker-process body shared by `mrinv worker` and the `mrinv-worker`
/// shim binary: connect back to the driver and serve task descriptors
/// until shutdown. Returns the process exit code.
pub fn worker_main(args: Vec<String>) -> i32 {
    let mut addr: Option<String> = None;
    let mut worker_id: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => addr = it.next(),
            "--worker-id" => worker_id = it.next().and_then(|v| v.parse().ok()),
            _ => {
                eprintln!("usage: mrinv worker --connect <addr> --worker-id <n>");
                return 2;
            }
        }
    }
    let (Some(addr), Some(worker_id)) = (addr, worker_id) else {
        eprintln!("usage: mrinv worker --connect <addr> --worker-id <n>");
        return 2;
    };

    // Lets in-crate task code (the die-once fault probe) detect that it
    // is running inside a disposable worker process.
    std::env::set_var(crate::remote::WORKER_ENV, "1");

    let registry = crate::remote::exec_registry();
    if let Err(e) = mrinv_mapreduce::worker_serve(&addr, worker_id, &registry) {
        eprintln!("mrinv-worker {worker_id}: {e}");
        return 1;
    }
    0
}

/// Entry point for the `mrinv-serve` shim binary: `mrinv serve` without
/// the subcommand word. Never returns on success.
pub fn serve_main(args: Vec<String>) -> i32 {
    let mut argv = vec!["serve".to_string()];
    argv.extend(args);
    run(argv)
}

/// Full subcommand dispatch; `args` excludes the program name. Returns
/// the process exit code (compute subcommands exit directly on error).
pub fn run(args: Vec<String>) -> i32 {
    let opts = parse(args);
    match opts.command.as_str() {
        "gen" => {
            let (Some(output), order) = (&opts.output, opts.order) else {
                usage()
            };
            if order == 0 {
                usage()
            }
            let a = random_well_conditioned(order, opts.seed);
            write_matrix(output, &a);
            eprintln!("wrote a well-conditioned {order}x{order} matrix to {output}");
        }
        "invert" if opts.connect.is_some() => {
            let addr = opts.connect.clone().unwrap();
            run_remote(&opts, &addr);
        }
        "invert" => {
            let (Some(input), Some(output)) = (&opts.input, &opts.output) else {
                usage()
            };
            let a = read_matrix(input);
            let cluster = build_cluster(&opts);
            let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
            let run = RunId::new(&opts.workdir);
            let result = retry_after_kill(
                opts.place(Request::invert(&a).config(&cfg), &run)
                    .submit(&cluster),
                &opts,
                || {
                    Request::invert(&a)
                        .config(&cfg)
                        .resume(&run)
                        .submit(&cluster)
                },
            );
            match result {
                Ok(out) => {
                    let inverse = out.inverse().expect("invert outcome");
                    let res = inversion_residual(&a, inverse).unwrap_or(f64::NAN);
                    write_matrix(output, inverse);
                    eprintln!(
                        "inverted {}x{} on {} simulated nodes: {} jobs, {:.1} simulated s",
                        a.rows(),
                        a.cols(),
                        opts.nodes,
                        out.report.jobs,
                        out.report.sim_secs
                    );
                    report_restored(&out.report);
                    eprintln!("max |I - A*A^-1| = {res:.3e} (paper threshold 1e-5)");
                    emit_observability(&opts, &cluster, &out.report);
                    if res.is_nan() || res >= 1e-5 {
                        eprintln!("mrinv: WARNING: residual exceeds the accuracy threshold");
                        exit(3);
                    }
                }
                Err(e) => {
                    eprintln!("mrinv: inversion failed: {e}");
                    exit(1);
                }
            }
        }
        "lu" if opts.connect.is_some() => {
            let addr = opts.connect.clone().unwrap();
            run_remote(&opts, &addr);
        }
        "lu" => {
            let (Some(input), Some(l_out), Some(u_out)) = (&opts.input, &opts.l_out, &opts.u_out)
            else {
                usage()
            };
            let a = read_matrix(input);
            let cluster = build_cluster(&opts);
            let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
            let run = RunId::new(&opts.workdir);
            let result = retry_after_kill(
                opts.place(Request::lu(&a).config(&cfg), &run)
                    .submit(&cluster),
                &opts,
                || Request::lu(&a).config(&cfg).resume(&run).submit(&cluster),
            );
            match result {
                Ok(out) => {
                    let f = out.factors().expect("lu outcome");
                    write_matrix(l_out, &f.l);
                    write_matrix(u_out, &f.u);
                    eprintln!(
                        "decomposed {}x{}: {} jobs; P stored implicitly (PA = LU), S = {:?}...",
                        a.rows(),
                        a.cols(),
                        out.report.jobs,
                        &f.perm.as_slice()[..f.perm.len().min(8)]
                    );
                    report_restored(&out.report);
                    emit_observability(&opts, &cluster, &out.report);
                }
                Err(e) => {
                    eprintln!("mrinv: decomposition failed: {e}");
                    exit(1);
                }
            }
        }
        "solve" if opts.connect.is_some() => {
            let addr = opts.connect.clone().unwrap();
            run_remote(&opts, &addr);
        }
        "solve" => {
            let (Some(input), Some(rhs_path), Some(output)) =
                (&opts.input, &opts.rhs, &opts.output)
            else {
                usage()
            };
            let a = read_matrix(input);
            let rhs = rhs_columns(&read_matrix(rhs_path));
            let cluster = build_cluster(&opts);
            let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
            let run = RunId::new(&opts.workdir);
            let result = retry_after_kill(
                opts.place(
                    Request::solve(&a).rhs_all(rhs.iter().cloned()).config(&cfg),
                    &run,
                )
                .submit(&cluster),
                &opts,
                || {
                    Request::solve(&a)
                        .rhs_all(rhs.iter().cloned())
                        .config(&cfg)
                        .resume(&run)
                        .submit(&cluster)
                },
            );
            match result {
                Ok(out) => {
                    write_matrix(output, &solutions_matrix(out.solutions()));
                    eprintln!(
                        "solved {} right-hand side(s) against {}x{}: {} jobs, {:.1} simulated s",
                        out.solutions().len(),
                        a.rows(),
                        a.cols(),
                        out.report.jobs,
                        out.report.sim_secs
                    );
                    report_restored(&out.report);
                    emit_observability(&opts, &cluster, &out.report);
                }
                Err(e) => {
                    eprintln!("mrinv: solve failed: {e}");
                    exit(1);
                }
            }
        }
        "tune" => run_tune(&opts),
        "serve" => run_serve(&opts),
        "worker" => {
            // Re-collect the worker flags out of the parsed options.
            let mut argv = Vec::new();
            if let Some(addr) = &opts.connect {
                argv.push("--connect".to_string());
                argv.push(addr.clone());
            }
            if let Some(id) = opts.worker_id {
                argv.push("--worker-id".to_string());
                argv.push(id.to_string());
            }
            return worker_main(argv);
        }
        _ => usage(),
    }
    0
}
