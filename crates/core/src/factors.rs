//! References to LU factors stored across many DFS files.
//!
//! With the Section 6.1 optimization the pipeline *never* combines factor
//! files: the final `L` is the union of every level's `L1`/`L2'`/`L3`
//! pieces, `N(d) = 2^d + (m0/2)(2^d − 1)` files in all, and readers
//! assemble what they need on the fly ("in our implementation, these files
//! are read into memory recursively"). [`FactorRef`] is the recursive
//! descriptor of that file forest.
//!
//! Two subtleties the assembly handles:
//!
//! * **pivoting** — the stored bottom-left stripes are `L2'`
//!   (pre-permutation); the true factor block is `L2 = P2·L2'`, so readers
//!   apply `P2` while assembling ("L2 is constructed only as it is read
//!   from HDFS", Section 5.3);
//! * **transposed storage** — with the Section 6.3 optimization, upper
//!   factors live on disk transposed; [`FactorRef::assemble_u_t`] returns
//!   `Uᵀ` without ever materializing a row-major `U`.

use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::{Matrix, Permutation};
use serde::{de_field, DeError, Deserialize, Serialize, Value};

use crate::error::{CoreError, Result};
use crate::source::BlockIo;

/// A striped file holding rows `range.0..range.1` of a block (for `L2'`),
/// or columns of a block (for `U2`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stripe {
    /// DFS path of the binary block.
    pub path: String,
    /// Covered index range (rows for `L2'` stripes, columns for `U2`).
    pub range: (usize, usize),
}

/// Recursive descriptor of where a (unit-lower `L`, upper `U`, permutation
/// `P`) factor triple lives in the DFS.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorRef {
    /// A master-node-decomposed block of order at most `nb`: one file per
    /// factor.
    Leaf {
        /// Block order.
        n: usize,
        /// Path of the unit-lower factor (full dense block).
        l_path: String,
        /// Path of the upper factor; holds `Uᵀ` when `transposed_u`.
        u_path: String,
        /// Pivot permutation of this block.
        perm: Permutation,
        /// Whether `u_path` stores the transpose (Section 6.3).
        transposed_u: bool,
    },
    /// An internal recursion node (Figure 1): factors of `A1`, the level's
    /// `L2'`/`U2` stripes, and factors of `B`.
    Node {
        /// Block order at this level.
        n: usize,
        /// Split point: `A1` has order `half`.
        half: usize,
        /// Factors of the top-left block.
        a1: Box<FactorRef>,
        /// Row stripes of `L2'` (pre-permutation), covering rows
        /// `0..n-half` of the bottom-left block.
        l2_stripes: Vec<Stripe>,
        /// Column stripes of `U2`; each file holds the stripe transposed
        /// when `transposed_u`.
        u2_stripes: Vec<Stripe>,
        /// Factors of the updated bottom-right block `B`.
        b: Box<FactorRef>,
        /// Whether upper-factor files are stored transposed.
        transposed_u: bool,
    },
}

impl FactorRef {
    /// Order of the factored block.
    pub fn n(&self) -> usize {
        match self {
            FactorRef::Leaf { n, .. } | FactorRef::Node { n, .. } => *n,
        }
    }

    /// The full pivot permutation `P` (Algorithm 2 line 11: the
    /// augmentation of `P1` and `P2`, recursively).
    pub fn perm(&self) -> Permutation {
        match self {
            FactorRef::Leaf { perm, .. } => perm.clone(),
            FactorRef::Node { a1, b, .. } => Permutation::augment(&a1.perm(), &b.perm()),
        }
    }

    /// Every DFS path this forest references, in a deterministic order.
    ///
    /// The factor cache uses this to validate an entry before serving it:
    /// a hit is only a hit while every underlying file still exists.
    pub fn paths(&self) -> Vec<String> {
        fn walk(f: &FactorRef, out: &mut Vec<String>) {
            match f {
                FactorRef::Leaf { l_path, u_path, .. } => {
                    out.push(l_path.clone());
                    out.push(u_path.clone());
                }
                FactorRef::Node {
                    a1,
                    l2_stripes,
                    u2_stripes,
                    b,
                    ..
                } => {
                    walk(a1, out);
                    out.extend(l2_stripes.iter().map(|s| s.path.clone()));
                    out.extend(u2_stripes.iter().map(|s| s.path.clone()));
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Number of DFS files holding the `L` factor (the Section 6.1
    /// `N(d)` quantity when stripes count `m0/2` per level).
    pub fn l_file_count(&self) -> u64 {
        match self {
            FactorRef::Leaf { .. } => 1,
            FactorRef::Node {
                a1, l2_stripes, b, ..
            } => a1.l_file_count() + l2_stripes.len() as u64 + b.l_file_count(),
        }
    }

    /// Assembles the full unit-lower factor `L`, applying each level's
    /// `P2` to its `L2'` stripes.
    pub fn assemble_l(&self, io: &mut dyn BlockIo) -> Result<Matrix> {
        match self {
            FactorRef::Leaf { l_path, n, .. } => {
                let m = decode_binary(&io.read_bytes(l_path)?)?;
                check_shape(&m, (*n, *n), l_path)?;
                Ok(m)
            }
            FactorRef::Node {
                n,
                half,
                a1,
                l2_stripes,
                b,
                ..
            } => {
                let mut l = Matrix::zeros(*n, *n);
                l.set_block(0, 0, &a1.assemble_l(io)?)?;
                let l2p = read_row_stripes(io, l2_stripes, *n - *half, *half)?;
                let l2 = b.perm().apply_rows(&l2p);
                l.set_block(*half, 0, &l2)?;
                l.set_block(*half, *half, &b.assemble_l(io)?)?;
                Ok(l)
            }
        }
    }

    /// Assembles the full upper factor `U` in row-major form.
    pub fn assemble_u(&self, io: &mut dyn BlockIo) -> Result<Matrix> {
        match self {
            FactorRef::Leaf {
                u_path,
                n,
                transposed_u,
                ..
            } => {
                let m = decode_binary(&io.read_bytes(u_path)?)?;
                check_shape(&m, (*n, *n), u_path)?;
                Ok(if *transposed_u { m.transpose() } else { m })
            }
            FactorRef::Node {
                n,
                half,
                a1,
                u2_stripes,
                b,
                transposed_u,
                ..
            } => {
                let mut u = Matrix::zeros(*n, *n);
                u.set_block(0, 0, &a1.assemble_u(io)?)?;
                let u2 = read_col_stripes(io, u2_stripes, *half, *n - *half, *transposed_u)?;
                u.set_block(0, *half, &u2)?;
                u.set_block(*half, *half, &b.assemble_u(io)?)?;
                Ok(u)
            }
        }
    }

    /// Assembles `Uᵀ` (lower-triangular) directly — the Section 6.3 fast
    /// path that never materializes a row-major `U`.
    pub fn assemble_u_t(&self, io: &mut dyn BlockIo) -> Result<Matrix> {
        match self {
            FactorRef::Leaf {
                u_path,
                n,
                transposed_u,
                ..
            } => {
                let m = decode_binary(&io.read_bytes(u_path)?)?;
                check_shape(&m, (*n, *n), u_path)?;
                Ok(if *transposed_u { m } else { m.transpose() })
            }
            FactorRef::Node {
                n,
                half,
                a1,
                u2_stripes,
                b,
                transposed_u,
                ..
            } => {
                // Uᵀ = [[U1ᵀ, 0], [U2ᵀ, U3ᵀ]]
                let mut ut = Matrix::zeros(*n, *n);
                ut.set_block(0, 0, &a1.assemble_u_t(io)?)?;
                let u2 = read_col_stripes(io, u2_stripes, *half, *n - *half, *transposed_u)?;
                ut.set_block(*half, 0, &u2.transpose())?;
                ut.set_block(*half, *half, &b.assemble_u_t(io)?)?;
                Ok(ut)
            }
        }
    }

    /// The Section 6.1 ablation (`separate_intermediate_files = false`):
    /// serially combines this factor forest into two single files under
    /// `dir`, returning the equivalent [`FactorRef::Leaf`].
    ///
    /// The returned leaf's permutation is the full assembled `P`, and its
    /// `l.bin`/`u.bin` hold the permuted, combined factors — so downstream
    /// consumers behave identically; only the serial combine cost and the
    /// extra write I/O differ.
    pub fn combine(&self, io: &mut dyn BlockIo, dir: &str, transpose_u: bool) -> Result<FactorRef> {
        let l = self.assemble_l(io)?;
        let u = if transpose_u {
            self.assemble_u_t(io)?
        } else {
            self.assemble_u(io)?
        };
        let l_path = format!("{dir}/l.bin");
        let u_path = format!("{dir}/u.bin");
        io.write_bytes(&l_path, encode_binary(&l));
        io.write_bytes(&u_path, encode_binary(&u));
        Ok(FactorRef::Leaf {
            n: self.n(),
            l_path,
            u_path,
            perm: self.perm(),
            transposed_u: transpose_u,
        })
    }
}

// Manual serde: the vendored derive cannot handle data-carrying enum
// variants, and `Permutation` (a foreign type) ships inline as its
// `S`-array so no orphan impl is needed.
impl Serialize for FactorRef {
    fn to_value(&self) -> Value {
        match self {
            FactorRef::Leaf {
                n,
                l_path,
                u_path,
                perm,
                transposed_u,
            } => Value::Object(vec![
                ("kind".to_string(), Value::String("leaf".to_string())),
                ("n".to_string(), n.to_value()),
                ("l_path".to_string(), l_path.to_value()),
                ("u_path".to_string(), u_path.to_value()),
                ("perm".to_string(), perm.as_slice().to_value()),
                ("transposed_u".to_string(), transposed_u.to_value()),
            ]),
            FactorRef::Node {
                n,
                half,
                a1,
                l2_stripes,
                u2_stripes,
                b,
                transposed_u,
            } => Value::Object(vec![
                ("kind".to_string(), Value::String("node".to_string())),
                ("n".to_string(), n.to_value()),
                ("half".to_string(), half.to_value()),
                ("a1".to_string(), a1.to_value()),
                ("l2_stripes".to_string(), l2_stripes.to_value()),
                ("u2_stripes".to_string(), u2_stripes.to_value()),
                ("b".to_string(), b.to_value()),
                ("transposed_u".to_string(), transposed_u.to_value()),
            ]),
        }
    }
}

impl Deserialize for FactorRef {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "leaf" => Ok(FactorRef::Leaf {
                n: de_field(v, "n")?,
                l_path: de_field(v, "l_path")?,
                u_path: de_field(v, "u_path")?,
                perm: Permutation::from_vec(de_field(v, "perm")?),
                transposed_u: de_field(v, "transposed_u")?,
            }),
            "node" => Ok(FactorRef::Node {
                n: de_field(v, "n")?,
                half: de_field(v, "half")?,
                a1: Box::new(de_field(v, "a1")?),
                l2_stripes: de_field(v, "l2_stripes")?,
                u2_stripes: de_field(v, "u2_stripes")?,
                b: Box::new(de_field(v, "b")?),
                transposed_u: de_field(v, "transposed_u")?,
            }),
            other => Err(DeError(format!("unknown FactorRef kind {other:?}"))),
        }
    }
}

fn check_shape(m: &Matrix, expect: (usize, usize), path: &str) -> Result<()> {
    if m.shape() != expect {
        return Err(CoreError::Invariant(format!(
            "factor file {path} has shape {:?}, expected {:?}",
            m.shape(),
            expect
        )));
    }
    Ok(())
}

/// Reads row stripes into an `(nrows x ncols)` block.
fn read_row_stripes(
    io: &mut dyn BlockIo,
    stripes: &[Stripe],
    nrows: usize,
    ncols: usize,
) -> Result<Matrix> {
    let mut out = Matrix::zeros(nrows, ncols);
    for s in stripes {
        let m = decode_binary(&io.read_bytes(&s.path)?)?;
        check_shape(&m, (s.range.1 - s.range.0, ncols), &s.path)?;
        out.set_block(s.range.0, 0, &m)?;
    }
    Ok(out)
}

/// Reads column stripes into an `(nrows x ncols)` block; stripe files hold
/// the stripe transposed when `transposed` is set.
fn read_col_stripes(
    io: &mut dyn BlockIo,
    stripes: &[Stripe],
    nrows: usize,
    ncols: usize,
    transposed: bool,
) -> Result<Matrix> {
    let mut out = Matrix::zeros(nrows, ncols);
    for s in stripes {
        let m = decode_binary(&io.read_bytes(&s.path)?)?;
        let w = s.range.1 - s.range.0;
        let m = if transposed {
            check_shape(&m, (w, nrows), &s.path)?;
            m.transpose()
        } else {
            check_shape(&m, (nrows, w), &s.path)?;
            m
        };
        out.set_block(0, s.range.0, &m)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MasterIo;
    use mrinv_mapreduce::Dfs;
    use mrinv_matrix::block::{even_ranges, BlockRange};
    use mrinv_matrix::random::{random_invertible, random_unit_lower, random_upper};

    /// Stores a known (L, U, P) pair as a two-level FactorRef forest and
    /// checks assembly reproduces it.
    #[allow(clippy::too_many_arguments)]
    fn build_node(
        dfs: &Dfs,
        l: &Matrix,
        u: &Matrix,
        p_top: &Permutation,
        p_bot: &Permutation,
        half: usize,
        stripes: usize,
        transposed_u: bool,
    ) -> FactorRef {
        let n = l.rows();
        let mut io = MasterIo::new(dfs);
        // Leaves for A1 and B.
        let l1 = l.block(BlockRange::new((0, half), (0, half))).unwrap();
        let u1 = u.block(BlockRange::new((0, half), (0, half))).unwrap();
        let l3 = l.block(BlockRange::new((half, n), (half, n))).unwrap();
        let u3 = u.block(BlockRange::new((half, n), (half, n))).unwrap();
        io.write_bytes("f/a1/l", encode_binary(&l1));
        io.write_bytes(
            "f/a1/u",
            encode_binary(&if transposed_u {
                u1.transpose()
            } else {
                u1.clone()
            }),
        );
        io.write_bytes("f/b/l", encode_binary(&l3));
        io.write_bytes(
            "f/b/u",
            encode_binary(&if transposed_u {
                u3.transpose()
            } else {
                u3.clone()
            }),
        );
        // L2 stripes are stored pre-permutation: L2' = P2^-1 L2.
        let l2 = l.block(BlockRange::new((half, n), (0, half))).unwrap();
        let l2p = p_bot.inverse().apply_rows(&l2);
        let mut l2_stripes = Vec::new();
        for (k, (r0, r1)) in even_ranges(n - half, stripes).into_iter().enumerate() {
            let path = format!("f/l2/{k}");
            io.write_bytes(&path, encode_binary(&l2p.row_stripe(r0, r1).unwrap()));
            l2_stripes.push(Stripe {
                path,
                range: (r0, r1),
            });
        }
        let u2 = u.block(BlockRange::new((0, half), (half, n))).unwrap();
        let mut u2_stripes = Vec::new();
        for (k, (c0, c1)) in even_ranges(n - half, stripes).into_iter().enumerate() {
            let path = format!("f/u2/{k}");
            let stripe = u2.col_stripe(c0, c1).unwrap();
            let data = if transposed_u {
                stripe.transpose()
            } else {
                stripe
            };
            io.write_bytes(&path, encode_binary(&data));
            u2_stripes.push(Stripe {
                path,
                range: (c0, c1),
            });
        }
        FactorRef::Node {
            n,
            half,
            a1: Box::new(FactorRef::Leaf {
                n: half,
                l_path: "f/a1/l".into(),
                u_path: "f/a1/u".into(),
                perm: p_top.clone(),
                transposed_u,
            }),
            l2_stripes,
            u2_stripes,
            b: Box::new(FactorRef::Leaf {
                n: n - half,
                l_path: "f/b/l".into(),
                u_path: "f/b/u".into(),
                perm: p_bot.clone(),
                transposed_u,
            }),
            transposed_u,
        }
    }

    fn shuffled_perm(n: usize, seed: u64) -> Permutation {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s: Vec<usize> = (0..n).collect();
        s.shuffle(&mut rng);
        Permutation::from_vec(s)
    }

    #[test]
    fn node_assembly_round_trips() {
        for &transposed in &[false, true] {
            let dfs = Dfs::default();
            let n = 12;
            let half = 5;
            let l = random_unit_lower(n, 1);
            let u = random_upper(n, 2);
            let p1 = shuffled_perm(half, 3);
            let p2 = shuffled_perm(n - half, 4);
            let f = build_node(&dfs, &l, &u, &p1, &p2, half, 3, transposed);
            let mut io = MasterIo::new(&dfs);
            assert_eq!(f.n(), n);
            assert!(f.assemble_l(&mut io).unwrap().approx_eq(&l, 1e-12));
            assert!(f.assemble_u(&mut io).unwrap().approx_eq(&u, 1e-12));
            assert!(f
                .assemble_u_t(&mut io)
                .unwrap()
                .approx_eq(&u.transpose(), 1e-12));
            assert_eq!(f.perm(), Permutation::augment(&p1, &p2));
            assert_eq!(f.l_file_count(), 1 + 3 + 1);
        }
    }

    #[test]
    fn leaf_round_trips() {
        let dfs = Dfs::default();
        let mut io = MasterIo::new(&dfs);
        let n = 6;
        let l = random_unit_lower(n, 5);
        let u = random_upper(n, 6);
        io.write_bytes("leaf/l", encode_binary(&l));
        io.write_bytes("leaf/u", encode_binary(&u.transpose()));
        let f = FactorRef::Leaf {
            n,
            l_path: "leaf/l".into(),
            u_path: "leaf/u".into(),
            perm: shuffled_perm(n, 7),
            transposed_u: true,
        };
        assert_eq!(f.assemble_l(&mut io).unwrap(), l);
        assert!(f.assemble_u(&mut io).unwrap().approx_eq(&u, 0.0));
        assert!(f
            .assemble_u_t(&mut io)
            .unwrap()
            .approx_eq(&u.transpose(), 0.0));
        assert_eq!(f.l_file_count(), 1);
    }

    #[test]
    fn paths_enumerate_the_whole_forest() {
        let dfs = Dfs::default();
        let n = 12;
        let half = 5;
        let l = random_unit_lower(n, 30);
        let u = random_upper(n, 31);
        let p1 = shuffled_perm(half, 32);
        let p2 = shuffled_perm(n - half, 33);
        let f = build_node(&dfs, &l, &u, &p1, &p2, half, 3, false);
        let paths = f.paths();
        // Two leaves (l + u each) plus 3 L2' stripes plus 3 U2 stripes.
        assert_eq!(paths.len(), 2 + 2 + 3 + 3);
        for p in &paths {
            assert!(dfs.exists(p), "listed path {p} must exist");
        }
    }

    #[test]
    fn combine_produces_equivalent_leaf() {
        let dfs = Dfs::default();
        let n = 10;
        let half = 4;
        let l = random_unit_lower(n, 8);
        let u = random_upper(n, 9);
        let p1 = shuffled_perm(half, 10);
        let p2 = shuffled_perm(n - half, 11);
        let f = build_node(&dfs, &l, &u, &p1, &p2, half, 2, true);
        let mut io = MasterIo::new(&dfs);
        let combined = f.combine(&mut io, "f/combined", true).unwrap();
        assert!(matches!(combined, FactorRef::Leaf { .. }));
        assert!(combined.assemble_l(&mut io).unwrap().approx_eq(&l, 1e-12));
        assert!(combined.assemble_u(&mut io).unwrap().approx_eq(&u, 1e-12));
        assert_eq!(combined.perm(), f.perm());
        assert_eq!(combined.l_file_count(), 1);
        assert!(io.bytes_written > 0, "combining costs write I/O");
    }

    #[test]
    fn corrupt_factor_shape_is_detected() {
        let dfs = Dfs::default();
        let mut io = MasterIo::new(&dfs);
        io.write_bytes("bad/l", encode_binary(&Matrix::zeros(3, 3)));
        io.write_bytes("bad/u", encode_binary(&Matrix::zeros(4, 4)));
        let f = FactorRef::Leaf {
            n: 4,
            l_path: "bad/l".into(),
            u_path: "bad/u".into(),
            perm: Permutation::identity(4),
            transposed_u: false,
        };
        assert!(matches!(
            f.assemble_l(&mut io),
            Err(CoreError::Invariant(_))
        ));
        assert!(f.assemble_u(&mut io).is_ok());
    }

    #[test]
    fn assembled_factors_invert_a_real_decomposition() {
        // End-to-end sanity: factor a matrix with the in-memory block
        // method, store it as a FactorRef forest, reassemble, and verify
        // P·A = L·U still holds.
        let dfs = Dfs::default();
        let n = 14;
        let half = 7;
        let a = random_invertible(n, 20);
        let f = crate::inmem::block_lu(&a, half).unwrap();
        let p1 = {
            // block_lu at nb = half yields exactly one split: recover the
            // sub-permutations from the augmented structure.
            let s = f.perm.as_slice();
            Permutation::from_vec(s[..half].to_vec())
        };
        let p2 = {
            let s = f.perm.as_slice();
            Permutation::from_vec(s[half..].iter().map(|&v| v - half).collect())
        };
        let fr = build_node(&dfs, &f.l, &f.u, &p1, &p2, half, 2, true);
        let mut io = MasterIo::new(&dfs);
        let l = fr.assemble_l(&mut io).unwrap();
        let u = fr.assemble_u(&mut io).unwrap();
        let pa = fr.perm().apply_rows(&a);
        assert!((&l * &u).approx_eq(&pa, 1e-8));
    }
}
