//! Inversion configuration: the bound value `nb` and the Section 6
//! optimization toggles.

use serde::{Deserialize, Serialize};

/// The three implementation optimizations of Section 6, individually
/// toggleable so the Figure 7 ablations can disable each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Section 6.1: keep intermediate `L`/`U` results in separate files.
    /// When disabled, the master node serially combines each level's
    /// factors into single files — the serial combine step Figure 7 shows
    /// costing up to ~30%.
    pub separate_intermediate_files: bool,
    /// Section 6.2: block-wrap matrix multiplication. When disabled,
    /// reducers compute row stripes of products and every reducer reads the
    /// entire right-hand operand (`(1 + 1/m0)n²` per node instead of
    /// `(1/f1 + 1/f2)n²`).
    pub block_wrap: bool,
    /// Section 6.3: store upper-triangular matrices transposed so multiply
    /// and solve kernels walk both operands row-major.
    pub transpose_u: bool,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            separate_intermediate_files: true,
            block_wrap: true,
            transpose_u: true,
        }
    }
}

impl Optimizations {
    /// All optimizations enabled (the paper's tuned configuration).
    pub fn all() -> Self {
        Optimizations::default()
    }

    /// All optimizations disabled (the unoptimized baseline).
    pub fn none() -> Self {
        Optimizations {
            separate_intermediate_files: false,
            block_wrap: false,
            transpose_u: false,
        }
    }
}

/// Configuration for one distributed inversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InversionConfig {
    /// The bound value `nb`: the largest matrix order LU-decomposed
    /// directly on the master node (Section 5 tunes this so a master-side
    /// LU costs about one MapReduce job launch; the paper uses 3200 at full
    /// scale, 200 at this repository's default 1/16 scale).
    pub nb: usize,
    /// Optimization toggles.
    pub opts: Optimizations,
}

impl Default for InversionConfig {
    fn default() -> Self {
        InversionConfig {
            nb: 200,
            opts: Optimizations::default(),
        }
    }
}

impl InversionConfig {
    /// Configuration with the given bound value and all optimizations on.
    pub fn with_nb(nb: usize) -> Self {
        assert!(nb >= 1, "bound value nb must be at least 1");
        InversionConfig {
            nb,
            opts: Optimizations::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = InversionConfig::default();
        assert_eq!(c.nb, 200);
        assert!(c.opts.separate_intermediate_files);
        assert!(c.opts.block_wrap);
        assert!(c.opts.transpose_u);
        assert_eq!(Optimizations::all(), Optimizations::default());
    }

    #[test]
    fn none_disables_everything() {
        let o = Optimizations::none();
        assert!(!o.separate_intermediate_files);
        assert!(!o.block_wrap);
        assert!(!o.transpose_u);
    }

    #[test]
    #[should_panic(expected = "bound value")]
    fn zero_nb_rejected() {
        let _ = InversionConfig::with_nb(0);
    }
}
