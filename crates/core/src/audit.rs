//! The cost-model audit: every priced task attempt checked against the
//! cost model's own closed forms.
//!
//! The paper's Section 1 claim — "the number of jobs in the pipeline and
//! the data movement between the jobs can be precisely determined before
//! the start of the computation" — is a *prediction*, and this module
//! measures how good it is on a finished run. Three layers:
//!
//! 1. **Structure** — the executed job count against the precomputed plan
//!    (the [`crate::schedule`] closed forms).
//! 2. **Stages** — measured bytes (from the trace) against the Table 1/2
//!    closed forms of [`crate::theory`], with calibrated tolerance bands:
//!    transfer lands within 10% of `(l+3)n²` / `(l'+2)n²`; writes sit
//!    between the paper's bound and the full file inventory (the forms
//!    exclude factor stripes — see `tests/schedule_and_costs.rs`).
//! 3. **Tasks** — for every successful priced attempt, the *predicted*
//!    cost re-derived from its measured stats through
//!    [`mrinv_mapreduce::CostModel`] (CPU + I/O + remote-read terms)
//!    against the *priced* simulated duration the wave planner charged.
//!    On a homogeneous cluster the two must agree to within
//!    [`MODEL_ERROR_THRESHOLD`]; heterogeneous node speeds, backoff
//!    delays, or a planner/pricer divergence show up as flagged residuals.
//!
//! The audit needs a traced run ([`mrinv_mapreduce::cluster::ClusterConfig::tracing`]);
//! [`crate::Request::submit`] attaches it to
//! [`mrinv_mapreduce::RunReport::audit`] automatically when the trace is on.

use mrinv_mapreduce::obs::{CostAudit, JobResiduals, StageAudit, TaskFlag, MODEL_ERROR_THRESHOLD};
use mrinv_mapreduce::runner::JobReport;
use mrinv_mapreduce::tracelog::{TaskEvent, TracePhase};
use mrinv_mapreduce::Cluster;

use crate::theory;

/// Relative half-width of the transfer bands: the measured stage transfer
/// must land within 10% of the Table 1/2 closed forms.
const TRANSFER_BAND: (f64, f64) = (0.9, 1.1);

/// Minimum LU recursion depth ([`crate::schedule::recursion_depth`]) the
/// transfer bands are calibrated for. The Table 1/2 forms are asymptotic
/// in the recursion depth; on shallow runs (e.g. n=64/nb=16, depth 2) the
/// lower-order terms they drop dominate the measurement (lu-transfer
/// ratio 0.71 at depth 2, 0.90 at depth 3, 1.09 at depth 4), so asserting
/// the 10% band there would report model drift where the model was never
/// claimed to apply. Out-of-domain runs simply omit the transfer stages.
const TRANSFER_CALIBRATED_MIN_DEPTH: u32 = 4;

/// Write-volume band: at least the paper's closed form, at most the full
/// file inventory (factor stripes and update files included) — the
/// calibration established by `measured_lu_writes_track_table1`.
const WRITES_BAND: (f64, f64) = (1.0, 2.2);

fn stage(name: &str, measured: f64, predicted: f64, band: (f64, f64)) -> StageAudit {
    let ratio = if predicted > 0.0 {
        measured / predicted
    } else {
        f64::NAN
    };
    StageAudit {
        stage: name.to_string(),
        measured,
        predicted,
        ratio,
        band_lo: band.0,
        band_hi: band.1,
        within_band: ratio >= band.0 && ratio <= band.1,
    }
}

fn phase_name(phase: TracePhase) -> &'static str {
    match phase {
        TracePhase::Map => "map",
        TracePhase::Reduce => "reduce",
        _ => "other",
    }
}

/// Exact (nearest-rank) p-th percentile of unsorted values; 0 when empty.
fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("residuals are finite"));
    let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

/// Audits one finished run: `reports` are the run's job reports (they
/// select this run's events out of the cluster trace by `job_seq`),
/// `planned_jobs` the precomputed pipeline length
/// ([`crate::schedule::total_jobs`], or one less for an LU-only run), and
/// `n`/`nb` the matrix order and block size the Table 1/2 closed forms
/// are evaluated at (`nb` fixes the recursion depth, which decides
/// whether the transfer bands are in their calibrated domain).
/// `dfs_bytes_written` is the run's write delta
/// ([`mrinv_mapreduce::RunReport::dfs_bytes_written`]) for the
/// write-volume stage check.
///
/// Works only on a traced cluster — with tracing off there are no events
/// and the audit degenerates to the structure check (0 tasks, trivially
/// within threshold), so callers gate on
/// [`mrinv_mapreduce::tracelog::TraceLog::is_enabled`].
pub fn cost_audit(
    cluster: &Cluster,
    reports: &[JobReport],
    planned_jobs: u64,
    n: usize,
    nb: usize,
    dfs_bytes_written: u64,
) -> CostAudit {
    let m0 = cluster.nodes();
    let cost = &cluster.config.cost;
    let seqs: std::collections::BTreeSet<u64> = reports.iter().map(|r| r.job_seq).collect();
    let events = cluster.trace.events();
    let run_events: Vec<&TaskEvent> = events
        .iter()
        .filter(|e| {
            e.job_seq.is_some_and(|s| seqs.contains(&s))
                && matches!(e.phase, TracePhase::Map | TracePhase::Reduce)
        })
        .collect();

    // ---- Stage audits: measured bytes vs the Tables 1/2 closed forms ----
    let stage_transfer = |prefix: &str| -> f64 {
        run_events
            .iter()
            .filter(|e| e.job.starts_with(prefix) && e.failure.is_none())
            .map(|e| (e.read_bytes + e.shuffle_bytes) as f64)
            .sum()
    };
    let mut stages = Vec::new();
    let in_transfer_domain =
        crate::schedule::recursion_depth(n, nb) >= TRANSFER_CALIBRATED_MIN_DEPTH;
    let lu_row = theory::table1_ours(n, m0);
    let has_lu = run_events.iter().any(|e| e.job.starts_with("lu-level:"));
    if has_lu && in_transfer_domain {
        stages.push(stage(
            "lu-transfer",
            stage_transfer("lu-level:"),
            lu_row.transfer_bytes(),
            TRANSFER_BAND,
        ));
    }
    let has_final = run_events
        .iter()
        .any(|e| e.job.starts_with("final-inverse:"));
    let inv_row = theory::table2_ours(n, m0);
    if has_final && in_transfer_domain {
        stages.push(stage(
            "final-inverse-transfer",
            stage_transfer("final-inverse:"),
            inv_row.transfer_bytes(),
            TRANSFER_BAND,
        ));
    }
    if has_lu {
        // The run's whole write volume against the closed forms of the
        // stages it executed (Table 1 alone for LU-only runs).
        let predicted_writes = lu_row.write_bytes()
            + if has_final {
                inv_row.write_bytes()
            } else {
                0.0
            };
        stages.push(stage(
            "total-writes",
            dfs_bytes_written as f64,
            predicted_writes,
            WRITES_BAND,
        ));
    }

    // ---- Per-task pricing residuals -------------------------------------
    // Successful attempts only: failed attempts are priced by their
    // truncation point (timeout limit, death instant), not the model.
    let mut flagged = Vec::new();
    let mut by_job: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut total = 0usize;
    let mut sum_abs = 0.0;
    let mut max_abs = 0.0f64;
    for e in run_events.iter().filter(|e| e.failure.is_none()) {
        let predicted = e.cpu_sim_secs + e.io_sim_secs + cost.remote_read_secs(e.remote_read_bytes);
        let priced = e.sim_end_secs - e.sim_start_secs;
        let residual = (priced - predicted) / predicted.max(1e-9);
        total += 1;
        sum_abs += residual.abs();
        max_abs = max_abs.max(residual.abs());
        by_job.entry(e.job.as_str()).or_default().push(residual);
        if residual.abs() > MODEL_ERROR_THRESHOLD {
            flagged.push(TaskFlag {
                job: e.job.clone(),
                phase: phase_name(e.phase).to_string(),
                task: e.task,
                attempt: e.attempt,
                predicted_secs: predicted,
                priced_secs: priced,
                residual,
            });
        }
    }
    let per_job = by_job
        .into_iter()
        .map(|(job, residuals)| {
            let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
            let mean = abs.iter().sum::<f64>() / abs.len() as f64;
            let max = abs.iter().cloned().fold(0.0f64, f64::max);
            let p95 = percentile(&mut abs, 0.95);
            JobResiduals {
                job: job.to_string(),
                tasks: residuals.len(),
                max_abs: max,
                mean_abs: mean,
                p95_abs: p95,
            }
        })
        .collect();

    let stages_ok = stages.iter().all(|s: &StageAudit| s.within_band);
    CostAudit {
        threshold: MODEL_ERROR_THRESHOLD,
        planned_jobs: planned_jobs as usize,
        executed_jobs: reports.len(),
        structure_ok: reports.len() as u64 == planned_jobs,
        stages,
        per_job,
        tasks: total,
        max_abs_residual: max_abs,
        mean_abs_residual: if total == 0 {
            0.0
        } else {
            sum_abs / total as f64
        },
        flagged,
        within_threshold: max_abs <= MODEL_ERROR_THRESHOLD && stages_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InversionConfig;
    use crate::request::Request;
    use mrinv_mapreduce::{ClusterConfig, CostModel};
    use mrinv_matrix::random::random_well_conditioned;

    fn traced_cluster(m0: usize) -> Cluster {
        let mut cfg = ClusterConfig::medium(m0);
        cfg.cost = CostModel::unit_for_tests();
        cfg.tracing = true;
        Cluster::new(cfg)
    }

    #[test]
    fn homogeneous_run_audits_clean() {
        let cluster = traced_cluster(4);
        let a = random_well_conditioned(64, 17);
        let out = Request::invert(&a)
            .config(&InversionConfig::with_nb(4))
            .submit(&cluster)
            .unwrap();
        let audit = out.report.audit.expect("traced run attaches the audit");
        assert!(
            audit.structure_ok,
            "planned {} executed {}",
            audit.planned_jobs, audit.executed_jobs
        );
        assert!(audit.tasks > 0);
        assert!(
            audit.max_abs_residual <= audit.threshold,
            "max residual {} over threshold {}",
            audit.max_abs_residual,
            audit.threshold
        );
        assert!(audit.flagged.is_empty());
        assert!(audit.within_threshold);
        assert!(
            audit.stages.iter().any(|s| s.stage == "lu-transfer"),
            "stage checks present: {:?}",
            audit.stages
        );
        for s in &audit.stages {
            assert!(
                s.within_band,
                "{}: ratio {} outside [{}, {}]",
                s.stage, s.ratio, s.band_lo, s.band_hi
            );
        }
    }

    #[test]
    fn shallow_runs_skip_out_of_domain_transfer_bands() {
        // n=64/nb=16 is recursion depth 2 — below the depth the transfer
        // bands were calibrated at. The audit must stay clean (residuals
        // are still exact) and simply omit the transfer stages instead of
        // reporting drift the closed forms never promised to model.
        let cluster = traced_cluster(4);
        let a = random_well_conditioned(64, 29);
        let out = Request::invert(&a)
            .config(&InversionConfig::with_nb(16))
            .submit(&cluster)
            .unwrap();
        let audit = out.report.audit.expect("traced run attaches the audit");
        assert!(audit.stages.iter().all(|s| !s.stage.contains("transfer")));
        assert!(
            audit.stages.iter().any(|s| s.stage == "total-writes"),
            "depth-independent write band still asserted: {:?}",
            audit.stages
        );
        assert!(audit.within_threshold, "clean residuals, clean audit");
    }

    #[test]
    fn heterogeneous_speeds_flag_residuals() {
        // A 3x-slow node breaks the speed-blind pricing assumption: priced
        // durations on that node exceed the nominal-speed prediction, so
        // the audit must flag tasks instead of reporting a clean model.
        let mut cfg = ClusterConfig::medium(4);
        cfg.cost = CostModel::unit_for_tests();
        cfg.tracing = true;
        cfg.node_speeds = vec![1.0, 1.0, 1.0, 1.0 / 3.0];
        let cluster = Cluster::new(cfg);
        let a = random_well_conditioned(64, 19);
        let out = Request::invert(&a)
            .config(&InversionConfig::with_nb(4))
            .submit(&cluster)
            .unwrap();
        let audit = out.report.audit.expect("traced run attaches the audit");
        assert!(
            audit.max_abs_residual > audit.threshold,
            "slow node must show up as model error (max {})",
            audit.max_abs_residual
        );
        assert!(!audit.flagged.is_empty());
        assert!(!audit.within_threshold);
    }

    #[test]
    fn untraced_cluster_yields_no_audit() {
        let mut cfg = ClusterConfig::medium(4);
        cfg.cost = CostModel::unit_for_tests();
        let cluster = Cluster::new(cfg);
        let a = random_well_conditioned(32, 23);
        let out = Request::invert(&a)
            .config(&InversionConfig::with_nb(8))
            .submit(&cluster)
            .unwrap();
        assert!(out.report.audit.is_none());
    }
}
