//! The precomputed pipeline schedule.
//!
//! A defining property of the paper's method (Section 4.2) is that the
//! whole MapReduce pipeline is known *before* the computation starts: the
//! recursion depth follows from `n` and `nb`, and with it the number of
//! jobs, the data movement, and the intermediate file counts. This module
//! computes those closed forms; the driver in [`crate::lu_mr`] executes
//! exactly this schedule, and tests assert the two agree.

/// Recursion depth `d = ⌈log2(n / nb)⌉` (0 when the matrix already fits the
/// master node).
pub fn recursion_depth(n: usize, nb: usize) -> u32 {
    assert!(nb >= 1, "nb must be positive");
    if n <= nb {
        return 0;
    }
    // Halving n until it fits nb: the driver splits at floor(n/2) and the
    // deeper (ceil) side dominates, so count by repeated ceil-halving.
    let mut d = 0;
    let mut m = n;
    while m > nb {
        m = m.div_ceil(2);
        d += 1;
    }
    d
}

/// Number of MapReduce jobs in the LU-decomposition pipeline: one per
/// internal node of the recursion tree.
///
/// When `n` divides down evenly (every block order at most doubles `nb`
/// before reaching it, as in the paper's suite) this equals the closed form
/// `2^d − 1` with `d = ⌈log2(n/nb)⌉`; Section 5 counts `2^⌈log2(n/nb)⌉`
/// jobs including the final inversion job. For awkward odd orders the two
/// sides of a split can bottom out at different depths and the exact count
/// comes from the recursion itself ("modulo rounding", Section 4.2).
pub fn lu_pipeline_jobs(n: usize, nb: usize) -> u64 {
    assert!(nb >= 1, "nb must be positive");
    if n <= nb {
        return 0;
    }
    let half = n / 2;
    lu_pipeline_jobs(half, nb) + 1 + lu_pipeline_jobs(n - half, nb)
}

/// Total MapReduce jobs to invert an order-`n` matrix: the partitioning
/// job, the LU pipeline, and the final inversion job. Reproduces Table 3's
/// "Number of Jobs" column (9 / 17 / 17 / 33 / 9 for the paper's suite).
///
/// ```
/// // The paper's M4: a 102400-order matrix with nb = 3200 needs 33 jobs.
/// assert_eq!(mrinv::schedule::total_jobs(102_400, 3200), 33);
/// ```
pub fn total_jobs(n: usize, nb: usize) -> u64 {
    lu_pipeline_jobs(n, nb) + 2
}

/// Number of files storing the final `L` (or `U`) factor with the separate
/// intermediate files optimization on (Section 6.1):
/// `N(d) = 2^d + (m0/2)(2^d − 1)`.
pub fn factor_file_count(d: u32, m0: usize) -> u64 {
    let two_d = 1u64 << d;
    two_d + (m0 as u64 / 2) * (two_d - 1)
}

/// One step of the pipeline plan, for display and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedJob {
    /// The map-only partitioning job (Section 5.2).
    Partition,
    /// One block-LU job at the given recursion depth, decomposing a block
    /// of the given order (Section 5.3).
    LuLevel {
        /// Depth in the recursion tree (0 = outermost).
        depth: u32,
        /// Order of the block this job's level operates on.
        order: usize,
    },
    /// The final triangular-inversion + product job (Section 5.4).
    FinalInverse,
}

/// Produces the full ordered job plan for inverting an order-`n` matrix.
///
/// The LU jobs appear in execution order: the recursion first descends the
/// `A1` side to the leaf, then interleaves sibling jobs bottom-up (a
/// post-order walk where each internal node contributes the job that
/// computes `L2'`, `U2`, and `B` for that node).
pub fn job_plan(n: usize, nb: usize) -> Vec<PlannedJob> {
    let mut plan = vec![PlannedJob::Partition];
    plan_lu(n, nb, 0, &mut plan);
    plan.push(PlannedJob::FinalInverse);
    plan
}

fn plan_lu(n: usize, nb: usize, depth: u32, plan: &mut Vec<PlannedJob>) {
    if n <= nb {
        return; // leaf: master-node LU, no MapReduce job
    }
    let half = n / 2;
    plan_lu(half, nb, depth + 1, plan); // decompose A1
    plan.push(PlannedJob::LuLevel { depth, order: n }); // L2', U2, B job
    plan_lu(n - half, nb, depth + 1, plan); // decompose B
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_matches_paper_examples() {
        // nb = 3200 (paper scale).
        assert_eq!(recursion_depth(20480, 3200), 3); // M1
        assert_eq!(recursion_depth(32768, 3200), 4); // M2
        assert_eq!(recursion_depth(40960, 3200), 4); // M3
        assert_eq!(recursion_depth(102_400, 3200), 5); // M4
        assert_eq!(recursion_depth(16384, 3200), 3); // M5
                                                     // Scale 1/16 (this repo's default) preserves every depth.
        assert_eq!(recursion_depth(1280, 200), 3);
        assert_eq!(recursion_depth(2048, 200), 4);
        assert_eq!(recursion_depth(2560, 200), 4);
        assert_eq!(recursion_depth(6400, 200), 5);
        assert_eq!(recursion_depth(1024, 200), 3);
    }

    #[test]
    fn job_counts_reproduce_table3() {
        // Table 3's "Number of Jobs" column.
        assert_eq!(total_jobs(20480, 3200), 9);
        assert_eq!(total_jobs(32768, 3200), 17);
        assert_eq!(total_jobs(40960, 3200), 17);
        assert_eq!(total_jobs(102_400, 3200), 33);
        assert_eq!(total_jobs(16384, 3200), 9);
    }

    #[test]
    fn small_matrix_needs_no_lu_jobs() {
        assert_eq!(recursion_depth(100, 200), 0);
        assert_eq!(recursion_depth(200, 200), 0);
        assert_eq!(lu_pipeline_jobs(200, 200), 0);
        assert_eq!(total_jobs(64, 200), 2);
    }

    #[test]
    fn paper_section42_example() {
        // Section 4.2: n = 1e5, nb = 3200 → "around n/nb iterations";
        // 2^⌈log2(n/nb)⌉ = 32 including the final job, i.e. 31 LU jobs.
        // 100000 halves to 3125 ≤ 3200 after 5 even splits.
        assert_eq!(lu_pipeline_jobs(100_000, 3200), 31);
        // Closed form agrees with the recursion on even suites.
        for &(n, nb) in &[
            (20480usize, 3200usize),
            (32768, 3200),
            (102_400, 3200),
            (1280, 200),
        ] {
            assert_eq!(
                lu_pipeline_jobs(n, nb),
                (1u64 << recursion_depth(n, nb)) - 1
            );
        }
    }

    #[test]
    fn file_count_formula_section61() {
        // Section 6.1's worked example: n = 2^15, nb = 2048, m0 = 64 →
        // d = 4, N(d) = 496.
        let d = recursion_depth(1 << 15, 2048);
        assert_eq!(d, 4);
        assert_eq!(factor_file_count(d, 64), 496);
        assert_eq!(factor_file_count(0, 64), 1);
        assert_eq!(factor_file_count(3, 4), 8 + 2 * 7);
    }

    #[test]
    fn plan_structure() {
        let plan = job_plan(800, 200);
        // d = 2: partition + 3 LU jobs + final = 5 entries.
        assert_eq!(plan.len(), 5);
        assert_eq!(plan[0], PlannedJob::Partition);
        assert_eq!(*plan.last().unwrap(), PlannedJob::FinalInverse);
        let lu: Vec<_> = plan
            .iter()
            .filter_map(|j| match j {
                PlannedJob::LuLevel { depth, order } => Some((*depth, *order)),
                _ => None,
            })
            .collect();
        // Post-order: A1's job (depth 1, order 400), root job (depth 0,
        // order 800), B's job (depth 1, order 400).
        assert_eq!(lu, vec![(1, 400), (0, 800), (1, 400)]);
    }

    #[test]
    fn plan_length_matches_total_jobs() {
        for &(n, nb) in &[
            (1280usize, 200usize),
            (2048, 200),
            (6400, 200),
            (100, 50),
            (64, 200),
        ] {
            assert_eq!(job_plan(n, nb).len() as u64, total_jobs(n, nb));
        }
    }

    #[test]
    fn odd_orders_schedule_consistently() {
        // Odd/non-power-of-two orders still produce a well-formed plan.
        for n in [3usize, 5, 7, 129, 333, 1001] {
            let plan = job_plan(n, 4);
            assert_eq!(plan.len() as u64, total_jobs(n, 4));
        }
    }

    #[test]
    #[should_panic(expected = "nb must be positive")]
    fn zero_nb_panics() {
        let _ = recursion_depth(10, 0);
    }
}
