//! Error type for the inversion pipeline.

use std::fmt;

use mrinv_mapreduce::MrError;
use mrinv_matrix::MatrixError;

/// Result alias for pipeline operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the distributed inversion pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A linear-algebra failure (singular matrix, shape mismatch, ...).
    Matrix(MatrixError),
    /// A framework failure (task retries exhausted, missing file, ...).
    MapReduce(MrError),
    /// A pipeline invariant was violated.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Matrix(e) => write!(f, "matrix error: {e}"),
            CoreError::MapReduce(e) => write!(f, "mapreduce error: {e}"),
            CoreError::Invariant(msg) => write!(f, "pipeline invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Matrix(e) => Some(e),
            CoreError::MapReduce(e) => Some(e),
            CoreError::Invariant(_) => None,
        }
    }
}

impl From<MatrixError> for CoreError {
    fn from(e: MatrixError) -> Self {
        CoreError::Matrix(e)
    }
}

impl From<MrError> for CoreError {
    fn from(e: MrError) -> Self {
        CoreError::MapReduce(e)
    }
}

impl From<CoreError> for MrError {
    /// Task bodies run inside the framework and must report framework
    /// errors; pipeline errors are carried as task messages.
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::MapReduce(e) => e,
            other => MrError::Other(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let m: CoreError = MatrixError::Singular { step: 2 }.into();
        assert!(matches!(m, CoreError::Matrix(_)));
        assert!(m.to_string().contains("singular"));

        let nf = MrError::FileNotFound {
            path: "x".into(),
            nearest_parent: "/".into(),
        };
        let mr: CoreError = nf.clone().into();
        let back: MrError = mr.into();
        assert_eq!(back, nf);

        let inv = CoreError::Invariant("bad".into());
        let as_mr: MrError = inv.into();
        assert!(matches!(as_mr, MrError::Other(_)));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let e: CoreError = MatrixError::Singular { step: 0 }.into();
        assert!(e.source().is_some());
        assert!(CoreError::Invariant("x".into()).source().is_none());
    }
}
