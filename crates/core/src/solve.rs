//! Downstream consumers of the distributed LU factors: determinants,
//! condition estimates, and refined inverses.
//!
//! These wrap the pipeline the way the paper's motivating applications
//! would (Section 1): one distributed factorization or inversion (issued
//! through [`Request`]), then cheap per-use work. Linear solves
//! themselves live on [`Request`] directly (`Request::solve(a).rhs(b)`).

use mrinv_mapreduce::Cluster;
use mrinv_matrix::norms::inversion_residual;
use mrinv_matrix::refine::refine_inverse;
use mrinv_matrix::Matrix;

use crate::config::InversionConfig;
use crate::error::Result;
use crate::request::Request;

/// Computes `det(A)` via the distributed LU factorization:
/// `det(A) = sign(P) · Π [U]_ii` (the `L` factor has unit diagonal).
pub fn determinant(cluster: &Cluster, a: &Matrix, cfg: &InversionConfig) -> Result<f64> {
    let out = Request::lu(a).config(cfg).submit(cluster)?;
    let f = out.into_factors();
    let n = f.u.rows();
    let mut det = f.perm.sign();
    for i in 0..n {
        det *= f.u[(i, i)];
    }
    Ok(det)
}

/// Estimates the 1-norm condition number `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` via one
/// distributed inversion.
pub fn condition_estimate(cluster: &Cluster, a: &Matrix, cfg: &InversionConfig) -> Result<f64> {
    let out = Request::invert(a).config(cfg).submit(cluster)?;
    Ok(a.one_norm() * out.into_inverse().one_norm())
}

/// Inverts and then polishes with Newton–Schulz refinement (the numerical
/// stability follow-up the paper defers to future work); returns the
/// refined inverse and the residual before/after.
pub fn invert_refined(
    cluster: &Cluster,
    a: &Matrix,
    cfg: &InversionConfig,
    max_steps: usize,
) -> Result<(Matrix, f64, f64)> {
    let out = Request::invert(a).config(cfg).submit(cluster)?;
    let inverse = out.into_inverse();
    let before = inversion_residual(a, &inverse)?;
    let refined = refine_inverse(a, &inverse, max_steps, f64::EPSILON * 16.0)?;
    let after = *refined.residual_history.last().unwrap();
    Ok((refined.inverse, before, after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_mapreduce::{ClusterConfig, CostModel};
    use mrinv_matrix::random::random_well_conditioned;

    fn cluster() -> Cluster {
        let mut cfg = ClusterConfig::medium(4);
        cfg.cost = CostModel::unit_for_tests();
        Cluster::new(cfg)
    }

    #[test]
    fn determinant_matches_small_cases() {
        let c = cluster();
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, 2.0]]).unwrap();
        let d = determinant(&c, &a, &InversionConfig::with_nb(1)).unwrap();
        assert!((d - 2.0).abs() < 1e-10);
        // Swapping two rows flips the sign.
        let b = Matrix::from_rows(&[&[4.0, 2.0], &[3.0, 1.0]]).unwrap();
        let db = determinant(&c, &b, &InversionConfig::with_nb(1)).unwrap();
        assert!((db + 2.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_is_multiplicative() {
        let c = cluster();
        let cfg = InversionConfig::with_nb(8);
        let a = random_well_conditioned(16, 5);
        let b = random_well_conditioned(16, 6);
        let ab = &a * &b;
        let da = determinant(&c, &a, &cfg).unwrap();
        let db = determinant(&c, &b, &cfg).unwrap();
        let dab = determinant(&c, &ab, &cfg).unwrap();
        assert!((dab - da * db).abs() / dab.abs() < 1e-8);
    }

    #[test]
    fn condition_estimate_is_sane() {
        let c = cluster();
        let cfg = InversionConfig::with_nb(8);
        // Identity has condition 1.
        let k_id = condition_estimate(&c, &Matrix::identity(16), &cfg).unwrap();
        assert!((k_id - 1.0).abs() < 1e-9);
        // Condition numbers are at least 1 and grow with bad scaling.
        let a = random_well_conditioned(16, 7);
        let k = condition_estimate(&c, &a, &cfg).unwrap();
        assert!(k >= 1.0);
        let mut skewed = a.clone();
        for j in 0..16 {
            skewed[(0, j)] *= 1e6;
        }
        let k_skew = condition_estimate(&c, &skewed, &cfg).unwrap();
        assert!(
            k_skew > k * 100.0,
            "scaling must worsen conditioning: {k} -> {k_skew}"
        );
    }

    #[test]
    fn refined_inverse_never_regresses() {
        let c = cluster();
        let a = random_well_conditioned(24, 9);
        let (refined, before, after) =
            invert_refined(&c, &a, &InversionConfig::with_nb(6), 4).unwrap();
        assert!(after <= before, "{before} -> {after}");
        assert!(inversion_residual(&a, &refined).unwrap() <= before);
    }
}
