//! The distributed block LU decomposition (Algorithm 2 over MapReduce).
//!
//! One MapReduce job per recursion node (Section 5.3):
//!
//! * **mappers** — half compute row stripes of `L2'` (each row solves
//!   `x·U1 = [A3]_row`, Equation 6), half compute column stripes of `U2`
//!   (each column solves `L1·x = [P1·A2]_col`). A mapper learns its role
//!   from its task input, the paper's control-file pattern (Section 5.1,
//!   Figure 5), and reads/writes only its own files;
//! * **reducers** — each computes one block-wrap cell of
//!   `B = A4 − L2'·U2` (Section 6.2) and writes it to `OUT/A.<cell>`;
//!   mappers emit `(cell, cell)` control pairs routed by the identity
//!   partitioner, exactly Figure 5's `(j, j)` scheme.
//!
//! Leaves (order ≤ `nb`) are LU-decomposed *on the master node*
//! (Section 4.2), and `B` is never re-materialized: the next level reads it
//! through [`MatrixSource`] descriptors (Section 5.2).

use mrinv_mapreduce::job::{
    identity_partitioner, JobSpec, MapContext, Mapper, ReduceContext, Reducer,
};
use mrinv_mapreduce::master::run_on_master;
use mrinv_mapreduce::runner::run_job;
use mrinv_mapreduce::{Cluster, MrError, PipelineDriver, TaskRegistry};
use mrinv_matrix::block::even_ranges;
use mrinv_matrix::io::encode_binary;
use mrinv_matrix::kernel::{gemm, gemm_with, notrans, trans, Strided};
use mrinv_matrix::lu::lu_decompose;
use mrinv_matrix::triangular::{
    solve_row_times_upper, solve_row_times_upper_transposed, solve_unit_lower_column,
};
use mrinv_matrix::Matrix;
use serde::{de_field, DeError, Deserialize, Serialize, Value};

use crate::config::Optimizations;
use crate::error::{CoreError, Result};
use crate::factors::{FactorRef, Stripe};
use crate::partition::{PartitionPlan, SourceTree};
use crate::source::{BlockIo, MasterIo, MatrixSource, Piece};

/// Registers this module's remote task family (see
/// [`crate::remote::exec_registry`]).
pub(crate) fn register(r: &mut TaskRegistry) {
    r.register::<LuLevelMapper, LuLevelReducer>("lu-level");
}

/// A block to decompose: either a materialized partition subtree (the input
/// side) or a descriptor-only source (a `B` submatrix).
#[derive(Debug, Clone)]
pub enum BlockView {
    /// Materialized by the partitioning job.
    Tree(SourceTree),
    /// Descriptor into reducer outputs (never materialized).
    Source {
        /// DFS directory for this block's outputs.
        dir: String,
        /// The block's pieces.
        source: MatrixSource,
    },
}

impl BlockView {
    fn n(&self) -> usize {
        match self {
            BlockView::Tree(t) => t.n(),
            BlockView::Source { source, .. } => source.rows(),
        }
    }

    fn dir(&self) -> String {
        match self {
            BlockView::Tree(t) => t.dir().to_string(),
            BlockView::Source { dir, .. } => dir.clone(),
        }
    }
}

/// Charges a master I/O session to the simulated clock.
pub(crate) fn charge_master_io(cluster: &Cluster, io: &MasterIo<'_>) {
    let cost = &cluster.config.cost;
    let secs = io.bytes_read as f64 / cost.disk_read_bw
        + io.bytes_written as f64 * f64::from(cost.replication) / cost.disk_write_bw;
    cluster.metrics.add_master_secs(secs);
}

/// Distributed block LU decomposition of the given block. Sequences one
/// MapReduce job per recursion node through the driver (each restorable
/// from a checkpoint manifest on resume) and returns the factor
/// descriptor. Leaf decompositions run on the master node and re-run
/// deterministically on resume; only their (small) master time is
/// re-charged.
pub fn lu_decompose_mr(
    driver: &mut PipelineDriver<'_>,
    view: BlockView,
    plan: &PartitionPlan,
    opts: &Optimizations,
) -> Result<FactorRef> {
    let cluster = driver.cluster();
    let n = view.n();
    let dir = view.dir();

    if n <= plan.nb {
        // Leaf: decompose on the master node (Algorithm 2 lines 2-3).
        let mut io = MasterIo::new(&cluster.dfs);
        let block = match &view {
            BlockView::Tree(SourceTree::Leaf { source, .. }) => source.read_all(&mut io)?,
            BlockView::Source { source, .. } => source.read_all(&mut io)?,
            BlockView::Tree(other) => {
                return Err(CoreError::Invariant(format!(
                    "partition tree has a split of order {} at leaf size",
                    other.n()
                )))
            }
        };
        let factors = run_on_master(cluster, || lu_decompose(&block))?;
        let l_path = format!("{dir}/l.bin");
        let u_path = format!("{dir}/u.bin");
        io.write_bytes(&l_path, encode_binary(&factors.unit_lower()));
        let u = factors.upper();
        let stored_u = if opts.transpose_u { u.transpose() } else { u };
        io.write_bytes(&u_path, encode_binary(&stored_u));
        charge_master_io(cluster, &io);
        return Ok(FactorRef::Leaf {
            n,
            l_path,
            u_path,
            perm: factors.perm,
            transposed_u: opts.transpose_u,
        });
    }

    // Internal node: resolve the quadrants.
    let (half, a1_view, a2, a3, a4) = match view {
        BlockView::Tree(SourceTree::Split {
            half,
            a1,
            a2,
            a3,
            a4,
            ..
        }) => (half, BlockView::Tree(*a1), a2, a3, a4),
        BlockView::Tree(SourceTree::Leaf { .. }) => unreachable!("handled above"),
        BlockView::Source { source, dir: d } => {
            let half = n / 2;
            let [q1, q2, q3, q4] = source.quadrants(half, half)?;
            (
                half,
                BlockView::Source {
                    dir: format!("{d}/A1"),
                    source: q1,
                },
                q2,
                q3,
                q4,
            )
        }
    };
    let rest = n - half;

    // Decompose A1 first (Algorithm 2 line 6).
    let a1_factors = lu_decompose_mr(driver, a1_view, plan, opts)?;
    let p1 = a1_factors.perm();

    // Stripe and cell geometry for this level.
    let l2_ranges: Vec<(usize, usize)> = even_ranges(rest, plan.m_l)
        .into_iter()
        .filter(|r| r.0 < r.1)
        .collect();
    let u2_ranges: Vec<(usize, usize)> = even_ranges(rest, plan.m_u)
        .into_iter()
        .filter(|r| r.0 < r.1)
        .collect();
    let cell_rows: Vec<(usize, usize)> = even_ranges(rest, plan.grid.0).into_iter().collect();
    let cell_cols: Vec<(usize, usize)> = even_ranges(rest, plan.grid.1).into_iter().collect();

    let mut inputs = Vec::new();
    for (k, &range) in l2_ranges.iter().enumerate() {
        inputs.push(LuTaskInput::L2Stripe { k, rows: range });
    }
    for (k, &range) in u2_ranges.iter().enumerate() {
        inputs.push(LuTaskInput::U2Stripe { k, cols: range });
    }

    let num_cells = plan.grid.0 * plan.grid.1;
    let mapper = LuLevelMapper {
        dir: dir.clone(),
        a1: a1_factors.clone(),
        p1: p1.clone(),
        a2,
        a3,
        opts: *opts,
        num_cells,
    };
    let l2_stripes: Vec<Stripe> = l2_ranges
        .iter()
        .enumerate()
        .map(|(k, &range)| Stripe {
            path: format!("{dir}/L2/L.{k}"),
            range,
        })
        .collect();
    let u2_stripes: Vec<Stripe> = u2_ranges
        .iter()
        .enumerate()
        .map(|(k, &range)| Stripe {
            path: format!("{dir}/U2/U.{k}"),
            range,
        })
        .collect();

    let reducer = LuLevelReducer {
        dir: dir.clone(),
        a4,
        l2_source: MatrixSource::new(
            (rest, half),
            l2_stripes
                .iter()
                .map(|s| Piece::new(s.path.clone(), s.range, (0, half)))
                .collect(),
        ),
        u2_source: if opts.transpose_u {
            // Transposed space: rows are U2's columns.
            MatrixSource::new(
                (rest, half),
                u2_stripes
                    .iter()
                    .map(|s| Piece::new(s.path.clone(), s.range, (0, half)))
                    .collect(),
            )
        } else {
            MatrixSource::new(
                (half, rest),
                u2_stripes
                    .iter()
                    .map(|s| Piece::new(s.path.clone(), (0, half), s.range))
                    .collect(),
            )
        },
        cell_rows: cell_rows.clone(),
        cell_cols: cell_cols.clone(),
        opts: *opts,
    };

    let spec = JobSpec::new(format!("lu-level:{dir}"))
        .reducers(num_cells)
        .partitioner(identity_partitioner)
        .shuffle_sized()
        .remote("lu-level");
    driver.step(spec.fingerprint(), |c| {
        run_job(c, &spec, &mapper, &reducer, &inputs).map(|(_outputs, report)| report)
    })?;

    // B's descriptor (Section 5.2: metadata only, built on the master).
    let b_pieces: Vec<Piece> = cell_rows
        .iter()
        .enumerate()
        .flat_map(|(i, &rr)| {
            let dir = &dir;
            let cell_cols = &cell_cols;
            cell_cols.iter().enumerate().filter_map(move |(j, &cc)| {
                if rr.0 >= rr.1 || cc.0 >= cc.1 {
                    return None;
                }
                let cell = i * cell_cols.len() + j;
                Some(Piece::new(format!("{dir}/OUT/A.{cell}"), rr, cc))
            })
        })
        .collect();
    let b_source = MatrixSource::new((rest, rest), b_pieces);

    // Decompose B (Algorithm 2 line 10).
    let b_factors = lu_decompose_mr(
        driver,
        BlockView::Source {
            dir: format!("{dir}/OUT"),
            source: b_source,
        },
        plan,
        opts,
    )?;

    let node = FactorRef::Node {
        n,
        half,
        a1: Box::new(a1_factors),
        l2_stripes,
        u2_stripes,
        b: Box::new(b_factors),
        transposed_u: opts.transpose_u,
    };

    if opts.separate_intermediate_files {
        Ok(node)
    } else {
        // Section 6.1 ablation: serially combine this level's factors on
        // the master while the cluster waits.
        let mut io = MasterIo::new(&cluster.dfs);
        let combined = run_on_master(cluster, || {
            node.combine(&mut io, &format!("{dir}/COMBINED"), opts.transpose_u)
        });
        charge_master_io(cluster, &io);
        combined
    }
}

/// Map-task input: which stripe of which factor to compute (the control
/// integer of Section 5.1, enriched with the stripe geometry).
#[derive(Debug, Clone)]
pub enum LuTaskInput {
    /// Compute rows `rows.0..rows.1` of `L2'`.
    L2Stripe {
        /// Stripe index.
        k: usize,
        /// Row range within the bottom-left block.
        rows: (usize, usize),
    },
    /// Compute columns `cols.0..cols.1` of `U2`.
    U2Stripe {
        /// Stripe index.
        k: usize,
        /// Column range within the top-right block.
        cols: (usize, usize),
    },
}

// Manual serde: the vendored derive cannot handle data-carrying enum
// variants.
impl Serialize for LuTaskInput {
    fn to_value(&self) -> Value {
        match self {
            LuTaskInput::L2Stripe { k, rows } => Value::Object(vec![
                ("kind".to_string(), Value::String("l2".to_string())),
                ("k".to_string(), k.to_value()),
                ("range".to_string(), rows.to_value()),
            ]),
            LuTaskInput::U2Stripe { k, cols } => Value::Object(vec![
                ("kind".to_string(), Value::String("u2".to_string())),
                ("k".to_string(), k.to_value()),
                ("range".to_string(), cols.to_value()),
            ]),
        }
    }
}

impl Deserialize for LuTaskInput {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "l2" => Ok(LuTaskInput::L2Stripe {
                k: de_field(v, "k")?,
                rows: de_field(v, "range")?,
            }),
            "u2" => Ok(LuTaskInput::U2Stripe {
                k: de_field(v, "k")?,
                cols: de_field(v, "range")?,
            }),
            other => Err(DeError(format!("unknown LuTaskInput kind {other:?}"))),
        }
    }
}

struct LuLevelMapper {
    dir: String,
    a1: FactorRef,
    p1: mrinv_matrix::Permutation,
    a2: MatrixSource,
    a3: MatrixSource,
    opts: Optimizations,
    num_cells: usize,
}

// Manual serde: `Permutation` is foreign, so `p1` ships inline as its
// `S`-array.
impl Serialize for LuLevelMapper {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dir".to_string(), self.dir.to_value()),
            ("a1".to_string(), self.a1.to_value()),
            ("p1".to_string(), self.p1.as_slice().to_value()),
            ("a2".to_string(), self.a2.to_value()),
            ("a3".to_string(), self.a3.to_value()),
            ("opts".to_string(), self.opts.to_value()),
            ("num_cells".to_string(), self.num_cells.to_value()),
        ])
    }
}

impl Deserialize for LuLevelMapper {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        Ok(LuLevelMapper {
            dir: de_field(v, "dir")?,
            a1: de_field(v, "a1")?,
            p1: mrinv_matrix::Permutation::from_vec(de_field(v, "p1")?),
            a2: de_field(v, "a2")?,
            a3: de_field(v, "a3")?,
            opts: de_field(v, "opts")?,
            num_cells: de_field(v, "num_cells")?,
        })
    }
}

impl Mapper for LuLevelMapper {
    type Input = LuTaskInput;
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &LuTaskInput,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        match *input {
            LuTaskInput::L2Stripe { k, rows } => {
                let a3_stripe = self.a3.read_rows(ctx, rows.0, rows.1)?;
                let mut out = Matrix::zeros(a3_stripe.rows(), a3_stripe.cols());
                if self.opts.transpose_u {
                    let u1_t = self.a1.assemble_u_t(ctx)?;
                    let kernel = std::time::Instant::now();
                    for i in 0..a3_stripe.rows() {
                        let row = solve_row_times_upper_transposed(&u1_t, a3_stripe.row(i))
                            .map_err(CoreError::from)?;
                        out.row_mut(i).copy_from_slice(&row);
                    }
                    ctx.charge_kernel(kernel.elapsed());
                } else {
                    let u1 = self.a1.assemble_u(ctx)?;
                    let kernel = std::time::Instant::now();
                    for i in 0..a3_stripe.rows() {
                        let row = solve_row_times_upper(&u1, a3_stripe.row(i))
                            .map_err(CoreError::from)?;
                        out.row_mut(i).copy_from_slice(&row);
                    }
                    ctx.charge_kernel(kernel.elapsed());
                }
                ctx.write(&format!("{}/L2/L.{k}", self.dir), encode_binary(&out));
            }
            LuTaskInput::U2Stripe { k, cols } => {
                let a2_stripe = self.a2.read_cols(ctx, cols.0, cols.1)?;
                // Pivot A2's rows by P1 before solving (Equation 5:
                // L1 U2 = P1 A2).
                let a2_stripe = self.p1.apply_rows(&a2_stripe);
                let l1 = self.a1.assemble_l(ctx)?;
                let half = l1.rows();
                let w = a2_stripe.cols();
                // Solve per column; accumulate directly in transposed
                // orientation when the Section 6.3 layout is on.
                if self.opts.transpose_u {
                    let mut out_t = Matrix::zeros(w, half);
                    let kernel = std::time::Instant::now();
                    for j in 0..w {
                        let col = solve_unit_lower_column(&l1, &a2_stripe.col(j))
                            .map_err(CoreError::from)?;
                        out_t.row_mut(j).copy_from_slice(&col);
                    }
                    ctx.charge_kernel(kernel.elapsed());
                    ctx.write(&format!("{}/U2/U.{k}", self.dir), encode_binary(&out_t));
                } else {
                    let mut out = Matrix::zeros(half, w);
                    let kernel = std::time::Instant::now();
                    for j in 0..w {
                        let col = solve_unit_lower_column(&l1, &a2_stripe.col(j))
                            .map_err(CoreError::from)?;
                        for i in 0..half {
                            out[(i, j)] = col[i];
                        }
                    }
                    ctx.charge_kernel(kernel.elapsed());
                    ctx.write(&format!("{}/U2/U.{k}", self.dir), encode_binary(&out));
                }
            }
        }
        // Control pairs (Figure 5): distribute the B cells round-robin
        // across map tasks so every reducer receives exactly one
        // (cell, cell) key.
        let mut cell = ctx.task_index();
        let stride = ctx.num_tasks();
        while cell < self.num_cells {
            ctx.emit(cell, cell);
            cell += stride;
        }
        Ok(())
    }
}

#[derive(Serialize, Deserialize)]
struct LuLevelReducer {
    dir: String,
    a4: MatrixSource,
    l2_source: MatrixSource,
    /// `U2` pieces; in transposed space (`rest x half`) when
    /// `opts.transpose_u`, else `half x rest`.
    u2_source: MatrixSource,
    cell_rows: Vec<(usize, usize)>,
    cell_cols: Vec<(usize, usize)>,
    opts: Optimizations,
}

impl Reducer for LuLevelReducer {
    type Key = usize;
    type Value = usize;
    type Output = ();

    fn reduce(
        &self,
        key: &usize,
        _values: &[usize],
        ctx: &mut ReduceContext,
    ) -> std::result::Result<(), MrError> {
        let cell = *key;
        let i = cell / self.cell_cols.len();
        let j = cell % self.cell_cols.len();
        let rr = self.cell_rows[i];
        let cc = self.cell_cols[j];
        if rr.0 >= rr.1 || cc.0 >= cc.1 {
            return Ok(());
        }
        let mut b = self.a4.read_range(ctx, rr, cc)?;
        let l2_rows = self.l2_source.read_rows(ctx, rr.0, rr.1)?;
        if self.opts.transpose_u {
            let u2t_rows = self.u2_source.read_rows(ctx, cc.0, cc.1)?;
            let kernel = std::time::Instant::now();
            gemm(-1.0, notrans(&l2_rows), trans(&u2t_rows), 1.0, &mut b)
                .map_err(CoreError::from)?;
            ctx.charge_kernel(kernel.elapsed());
        } else {
            // Ablation path: row-major U2, Equation 7's column-striding
            // inner loop (the access pattern Section 6.3 eliminates) —
            // pinned to the Strided backend so the ablation measures that
            // exact loop order regardless of the process-wide backend.
            let u2_cols = self.u2_source.read_cols(ctx, cc.0, cc.1)?;
            let kernel = std::time::Instant::now();
            gemm_with(
                &Strided,
                -1.0,
                notrans(&l2_rows),
                notrans(&u2_cols),
                1.0,
                &mut b,
            )
            .map_err(CoreError::from)?;
            ctx.charge_kernel(kernel.elapsed());
        }
        ctx.write(&format!("{}/OUT/A.{cell}", self.dir), encode_binary(&b));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InversionConfig;
    use crate::partition::{ingest_input, run_partition_job};
    use mrinv_mapreduce::runner::JobReport;
    use mrinv_mapreduce::{ClusterConfig, CostModel, RunId};
    use mrinv_matrix::random::random_invertible;

    fn run_lu(
        n: usize,
        nb: usize,
        m0: usize,
        opts: Optimizations,
        seed: u64,
    ) -> (Cluster, FactorRef, Vec<JobReport>, Matrix) {
        let mut ccfg = ClusterConfig::medium(m0);
        ccfg.cost = CostModel::unit_for_tests();
        let cluster = Cluster::new(ccfg);
        let mut icfg = InversionConfig::with_nb(nb);
        icfg.opts = opts;
        let plan = PartitionPlan::new(n, &cluster, &icfg, "Root");
        let a = random_invertible(n, seed);
        ingest_input(&cluster, &a, &plan).unwrap();
        let mut driver = PipelineDriver::new(&cluster, RunId::new("Root"));
        let (tree, _) = run_partition_job(&mut driver, &plan).unwrap();
        let factors =
            lu_decompose_mr(&mut driver, BlockView::Tree(tree), &plan, &icfg.opts).unwrap();
        // Reports minus the partition job: the LU pipeline proper.
        let reports = driver.reports()[1..].to_vec();
        (cluster, factors, reports, a)
    }

    fn assert_pa_eq_lu(cluster: &Cluster, factors: &FactorRef, a: &Matrix, tol: f64) {
        let mut io = MasterIo::new(&cluster.dfs);
        let l = factors.assemble_l(&mut io).unwrap();
        let u = factors.assemble_u(&mut io).unwrap();
        let pa = factors.perm().apply_rows(a);
        let lu = &l * &u;
        assert!(
            lu.approx_eq(&pa, tol),
            "PA != LU (max diff {})",
            lu.max_abs_diff(&pa).unwrap()
        );
    }

    #[test]
    fn one_level_decomposition_matches() {
        let (cluster, factors, reports, a) = run_lu(16, 8, 4, Optimizations::all(), 1);
        assert_eq!(reports.len(), 1, "one recursion node -> one MR job");
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-8);
    }

    #[test]
    fn two_level_decomposition_matches() {
        let (cluster, factors, reports, a) = run_lu(32, 8, 4, Optimizations::all(), 2);
        assert_eq!(reports.len(), 3, "depth 2 -> 3 MR jobs");
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-8);
    }

    #[test]
    fn three_level_decomposition_matches() {
        let (cluster, factors, reports, a) = run_lu(64, 8, 4, Optimizations::all(), 3);
        assert_eq!(reports.len(), 7);
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-7);
    }

    #[test]
    fn odd_orders_decompose() {
        for &(n, nb, m0) in &[(21usize, 5usize, 3usize), (37, 9, 4), (50, 7, 5)] {
            let (cluster, factors, _p, a) = run_lu(n, nb, m0, Optimizations::all(), n as u64);
            assert_pa_eq_lu(&cluster, &factors, &a, 1e-7);
        }
    }

    #[test]
    fn all_ablation_combinations_agree() {
        let mut variants = Vec::new();
        for sep in [true, false] {
            for wrap in [true, false] {
                for tr in [true, false] {
                    variants.push(Optimizations {
                        separate_intermediate_files: sep,
                        block_wrap: wrap,
                        transpose_u: tr,
                    });
                }
            }
        }
        let mut reference: Option<Matrix> = None;
        for opts in variants {
            let (cluster, factors, _p, a) = run_lu(24, 6, 4, opts, 42);
            assert_pa_eq_lu(&cluster, &factors, &a, 1e-8);
            let mut io = MasterIo::new(&cluster.dfs);
            let l = factors.assemble_l(&mut io).unwrap();
            match &reference {
                None => reference = Some(l),
                Some(r) => assert!(
                    l.approx_eq(r, 1e-9),
                    "optimizations changed the numerics: {opts:?}"
                ),
            }
        }
    }

    #[test]
    fn combine_ablation_reduces_file_count() {
        let (_c1, f1, _p1, _a1) = run_lu(32, 8, 4, Optimizations::all(), 7);
        let mut no_sep = Optimizations::all();
        no_sep.separate_intermediate_files = false;
        let (_c2, f2, _p2, _a2) = run_lu(32, 8, 4, no_sep, 7);
        assert!(f1.l_file_count() > 1, "separate files keep the forest");
        assert_eq!(f2.l_file_count(), 1, "combining collapses to one file");
    }

    #[test]
    fn factor_file_count_matches_formula() {
        // N(d) = 2^d + (m0/2)(2^d - 1) when every level has m0/2 stripes.
        let (_c, f, _p, _a) = run_lu(64, 8, 4, Optimizations::all(), 9);
        let d = crate::schedule::recursion_depth(64, 8);
        assert_eq!(f.l_file_count(), crate::schedule::factor_file_count(d, 4));
    }

    #[test]
    fn single_node_cluster_works() {
        let (cluster, factors, _p, a) = run_lu(16, 4, 1, Optimizations::all(), 11);
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-8);
    }

    #[test]
    fn leaf_only_decomposition_runs_no_jobs() {
        let (cluster, factors, reports, a) = run_lu(8, 16, 2, Optimizations::all(), 13);
        assert_eq!(reports.len(), 0);
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-9);
        assert!(cluster.metrics.snapshot().master_secs > 0.0);
    }

    #[test]
    fn fault_injection_does_not_change_result() {
        let mut ccfg = ClusterConfig::medium(4);
        ccfg.cost = CostModel::unit_for_tests();
        let cluster = Cluster::new(ccfg);
        cluster
            .faults
            .fail_task("lu-level", mrinv_mapreduce::Phase::Map, 0, 1);
        cluster
            .faults
            .fail_task("lu-level", mrinv_mapreduce::Phase::Reduce, 1, 1);
        let icfg = InversionConfig::with_nb(8);
        let plan = PartitionPlan::new(32, &cluster, &icfg, "Root");
        let a = random_invertible(32, 17);
        ingest_input(&cluster, &a, &plan).unwrap();
        let mut driver = PipelineDriver::new(&cluster, RunId::new("Root"));
        let (tree, _) = run_partition_job(&mut driver, &plan).unwrap();
        let factors =
            lu_decompose_mr(&mut driver, BlockView::Tree(tree), &plan, &icfg.opts).unwrap();
        assert!(driver.total_failures() >= 2);
        assert_pa_eq_lu(&cluster, &factors, &a, 1e-8);
    }
}
