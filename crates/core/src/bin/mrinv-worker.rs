//! Worker-process entry point for the `tcp` execution backend — a thin
//! shim over `mrinv worker`, kept as a standalone binary because
//! [`mrinv_mapreduce::TcpWorkers`] spawns workers by this file name
//! (found next to whichever binary is driving).
//!
//! ```text
//! mrinv-worker --connect 127.0.0.1:<port> --worker-id <n>
//! ```

fn main() {
    std::process::exit(mrinv::cli::worker_main(std::env::args().skip(1).collect()));
}
