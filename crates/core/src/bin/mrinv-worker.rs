//! Worker-process entry point for the `tcp` execution backend.
//!
//! Spawned by [`mrinv_mapreduce::TcpWorkers`] (one process per simulated
//! worker slot); connects back to the driver, then loops decoding task
//! descriptors and streaming DFS reads/writes over the same socket until
//! the driver sends a shutdown frame.
//!
//! ```text
//! mrinv-worker --connect 127.0.0.1:<port> --worker-id <n>
//! ```

fn usage() -> ! {
    eprintln!("usage: mrinv-worker --connect <addr> --worker-id <n>");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut worker_id: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            "--worker-id" => worker_id = args.next().and_then(|v| v.parse().ok()),
            _ => usage(),
        }
    }
    let (Some(addr), Some(worker_id)) = (addr, worker_id) else {
        usage();
    };

    // Lets in-crate task code (the die-once fault probe) detect that it
    // is running inside a disposable worker process.
    std::env::set_var(mrinv::remote::WORKER_ENV, "1");

    let registry = mrinv::remote::exec_registry();
    if let Err(e) = mrinv_mapreduce::worker_serve(&addr, worker_id, &registry) {
        eprintln!("mrinv-worker {worker_id}: {e}");
        std::process::exit(1);
    }
}
