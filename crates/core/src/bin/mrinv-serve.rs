//! `mrinv-serve` — the multi-tenant inversion service daemon; a thin
//! shim over `mrinv serve`.
//!
//! ```text
//! mrinv-serve [--listen 127.0.0.1:7171] [--nodes 4] [--max-queue 64]
//! ```
//!
//! Prints `listening on <addr>` to stdout once bound, then serves
//! forever. See [`mrinv::service`] for the protocol and
//! [`mrinv::client::ServiceClient`] for the matching client.

fn main() {
    std::process::exit(mrinv::cli::serve_main(std::env::args().skip(1).collect()));
}
