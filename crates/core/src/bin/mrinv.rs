//! `mrinv` — the command-line front end. All subcommand parsing and
//! dispatch lives in [`mrinv::cli`], shared with the `mrinv-serve` and
//! `mrinv-worker` shim binaries.

fn main() {
    std::process::exit(mrinv::cli::run(std::env::args().skip(1).collect()));
}
