//! `mrinv` — command-line matrix inversion over the simulated MapReduce
//! cluster.
//!
//! ```text
//! mrinv invert --input a.txt --output inv.txt [--nodes 4] [--nb 200]
//! mrinv lu     --input a.txt --l l.txt --u u.txt [--nodes 4] [--nb 200]
//! mrinv gen    --order 512 --output a.txt [--seed 42]
//! ```
//!
//! Matrices use the text format of the paper's `a.txt` (a `rows cols`
//! header line, then whitespace-separated values; see
//! `mrinv_matrix::io`). `invert` prints the pipeline's job count,
//! simulated time, and the Section 7.2 residual check.

use std::process::exit;

use mrinv::{invert, lu, InversionConfig};
use mrinv_mapreduce::Cluster;
use mrinv_matrix::io::{decode_text, encode_text};
use mrinv_matrix::norms::inversion_residual;
use mrinv_matrix::random::random_well_conditioned;
use mrinv_matrix::Matrix;

struct Opts {
    command: String,
    input: Option<String>,
    output: Option<String>,
    l_out: Option<String>,
    u_out: Option<String>,
    nodes: usize,
    nb: usize,
    order: usize,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  mrinv invert --input a.txt --output inv.txt [--nodes N] [--nb NB]\n  mrinv lu --input a.txt --l l.txt --u u.txt [--nodes N] [--nb NB]\n  mrinv gen --order N --output a.txt [--seed S]"
    );
    exit(2)
}

fn parse() -> Opts {
    let mut opts = Opts {
        command: String::new(),
        input: None,
        output: None,
        l_out: None,
        u_out: None,
        nodes: 4,
        nb: 200,
        order: 0,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    opts.command = it.next().unwrap_or_else(|| usage());
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--input" => opts.input = Some(val()),
            "--output" => opts.output = Some(val()),
            "--l" => opts.l_out = Some(val()),
            "--u" => opts.u_out = Some(val()),
            "--nodes" => opts.nodes = val().parse().unwrap_or_else(|_| usage()),
            "--nb" => opts.nb = val().parse().unwrap_or_else(|_| usage()),
            "--order" => opts.order = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    opts
}

fn read_matrix(path: &str) -> Matrix {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot read {path}: {e}");
        exit(1)
    });
    decode_text(&text).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot parse {path}: {e}");
        exit(1)
    })
}

fn write_matrix(path: &str, m: &Matrix) {
    std::fs::write(path, encode_text(m)).unwrap_or_else(|e| {
        eprintln!("mrinv: cannot write {path}: {e}");
        exit(1)
    });
}

fn main() {
    let opts = parse();
    match opts.command.as_str() {
        "gen" => {
            let (Some(output), order) = (&opts.output, opts.order) else { usage() };
            if order == 0 {
                usage()
            }
            let a = random_well_conditioned(order, opts.seed);
            write_matrix(output, &a);
            println!("wrote a well-conditioned {order}x{order} matrix to {output}");
        }
        "invert" => {
            let (Some(input), Some(output)) = (&opts.input, &opts.output) else { usage() };
            let a = read_matrix(input);
            let cluster = Cluster::medium(opts.nodes);
            let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
            match invert(&cluster, &a, &cfg) {
                Ok(out) => {
                    let res = inversion_residual(&a, &out.inverse).unwrap_or(f64::NAN);
                    write_matrix(output, &out.inverse);
                    println!(
                        "inverted {}x{} on {} simulated nodes: {} jobs, {:.1} simulated s",
                        a.rows(),
                        a.cols(),
                        opts.nodes,
                        out.report.jobs,
                        out.report.sim_secs
                    );
                    println!("max |I - A*A^-1| = {res:.3e} (paper threshold 1e-5)");
                    if !(res < 1e-5) {
                        eprintln!("mrinv: WARNING: residual exceeds the accuracy threshold");
                        exit(3);
                    }
                }
                Err(e) => {
                    eprintln!("mrinv: inversion failed: {e}");
                    exit(1);
                }
            }
        }
        "lu" => {
            let (Some(input), Some(l_out), Some(u_out)) = (&opts.input, &opts.l_out, &opts.u_out)
            else {
                usage()
            };
            let a = read_matrix(input);
            let cluster = Cluster::medium(opts.nodes);
            let cfg = InversionConfig::with_nb(opts.nb.min(a.rows().max(1)));
            match lu(&cluster, &a, &cfg) {
                Ok(out) => {
                    write_matrix(l_out, &out.l);
                    write_matrix(u_out, &out.u);
                    println!(
                        "decomposed {}x{}: {} jobs; P stored implicitly (PA = LU), S = {:?}...",
                        a.rows(),
                        a.cols(),
                        out.report.jobs,
                        &out.perm.as_slice()[..out.perm.len().min(8)]
                    );
                }
                Err(e) => {
                    eprintln!("mrinv: decomposition failed: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}
