//! Closed-form cost model of Tables 1 and 2.
//!
//! The paper summarizes the algorithm's I/O, data transfer, and arithmetic
//! in two tables (for an `n × n` matrix on `m0 = f1 × f2` nodes):
//!
//! | Phase | Write | Read | Transfer | Mults | Adds |
//! |---|---|---|---|---|---|
//! | Our LU (Table 1) | 3/2·n² | (l+3)·n² | (l+3)·n² | n³/3 | n³/3 |
//! | ScaLAPACK LU | n² | n² | 2/3·m0·n² | n³/3 | n³/3 |
//! | Our inversion (Table 2) | 2·n² | l'·n² | (l'+2)·n² | 2/3·n³ | 2/3·n³ |
//! | ScaLAPACK inversion | n² | m0·n² | m0·n² | 2/3·n³ | 2/3·n³ |
//!
//! with `l = (m0 + 2·f1 + 2·f2)/4` in Table 1 and `l' = (m0 + f1 + f2)/2`
//! in Table 2. All I/O quantities are in *elements* (multiply by 8 for
//! bytes); the benchmark harness compares the measured DFS counters
//! against these forms.

use mrinv_mapreduce::cluster::factor_pair;

/// One row of Table 1 or Table 2, in elements and flops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRow {
    /// Elements written to the DFS (or local disk for ScaLAPACK).
    pub writes: f64,
    /// Elements read.
    pub reads: f64,
    /// Elements transferred over the network.
    pub transfer: f64,
    /// Multiplications.
    pub mults: f64,
    /// Additions.
    pub adds: f64,
}

impl CostRow {
    /// Writes in bytes (8 bytes per element).
    pub fn write_bytes(&self) -> f64 {
        self.writes * 8.0
    }

    /// Reads in bytes.
    pub fn read_bytes(&self) -> f64 {
        self.reads * 8.0
    }

    /// Transfer in bytes.
    pub fn transfer_bytes(&self) -> f64 {
        self.transfer * 8.0
    }
}

/// Table 1's `l = (m0 + 2·f1 + 2·f2) / 4`.
pub fn table1_l(m0: usize) -> f64 {
    let (f1, f2) = factor_pair(m0);
    (m0 as f64 + 2.0 * f1 as f64 + 2.0 * f2 as f64) / 4.0
}

/// Table 2's `l = (m0 + f1 + f2) / 2`.
pub fn table2_l(m0: usize) -> f64 {
    let (f1, f2) = factor_pair(m0);
    (m0 as f64 + f1 as f64 + f2 as f64) / 2.0
}

/// Table 1, row "Our Algorithm": the MapReduce LU decomposition.
pub fn table1_ours(n: usize, m0: usize) -> CostRow {
    let n2 = (n as f64) * (n as f64);
    let n3 = n2 * n as f64;
    let l = table1_l(m0);
    CostRow {
        writes: 1.5 * n2,
        reads: (l + 3.0) * n2,
        transfer: (l + 3.0) * n2,
        mults: n3 / 3.0,
        adds: n3 / 3.0,
    }
}

/// Table 1, row "ScaLAPACK": MPI LU decomposition.
pub fn table1_scalapack(n: usize, m0: usize) -> CostRow {
    let n2 = (n as f64) * (n as f64);
    let n3 = n2 * n as f64;
    CostRow {
        writes: n2,
        reads: n2,
        transfer: 2.0 / 3.0 * m0 as f64 * n2,
        mults: n3 / 3.0,
        adds: n3 / 3.0,
    }
}

/// Table 2, row "Our Algorithm": triangular inversion plus the final
/// product.
pub fn table2_ours(n: usize, m0: usize) -> CostRow {
    let n2 = (n as f64) * (n as f64);
    let n3 = n2 * n as f64;
    let l = table2_l(m0);
    CostRow {
        writes: 2.0 * n2,
        reads: l * n2,
        transfer: (l + 2.0) * n2,
        mults: 2.0 / 3.0 * n3,
        adds: 2.0 / 3.0 * n3,
    }
}

/// Table 2, row "ScaLAPACK": MPI triangular inversion and product.
pub fn table2_scalapack(n: usize, m0: usize) -> CostRow {
    let n2 = (n as f64) * (n as f64);
    let n3 = n2 * n as f64;
    CostRow {
        writes: n2,
        reads: m0 as f64 * n2,
        transfer: m0 as f64 * n2,
        mults: 2.0 / 3.0 * n3,
        adds: 2.0 / 3.0 * n3,
    }
}

/// The node count above which the paper's model predicts our algorithm
/// transfers *less* than ScaLAPACK for LU: `(l+3) < (2/3)·m0`.
///
/// This is the analytic heart of the Figure 8 crossover: ScaLAPACK's
/// transfer grows linearly in `m0` with a 2/3 slope while ours grows with a
/// ~1/4 slope.
pub fn lu_transfer_crossover_m0() -> usize {
    (4..=4096)
        .find(|&m0| {
            let ours = table1_l(m0) + 3.0;
            let theirs = 2.0 / 3.0 * m0 as f64;
            ours < theirs
        })
        .unwrap_or(4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_values_for_square_grids() {
        // m0 = 64 → f1 = f2 = 8: l1 = (64+32)/4 = 24, l2 = (64+16)/2 = 40.
        assert_eq!(table1_l(64), 24.0);
        assert_eq!(table2_l(64), 40.0);
        // m0 = 4 → f1 = f2 = 2.
        assert_eq!(table1_l(4), 3.0);
        assert_eq!(table2_l(4), 4.0);
    }

    #[test]
    fn table1_rows() {
        let ours = table1_ours(100, 4);
        assert_eq!(ours.writes, 1.5 * 1e4);
        assert_eq!(ours.reads, 6.0 * 1e4);
        assert_eq!(ours.transfer, ours.reads, "all DFS reads cross the network");
        assert_eq!(ours.mults, 1e6 / 3.0);
        let scal = table1_scalapack(100, 4);
        assert_eq!(scal.writes, 1e4);
        assert!((scal.transfer - 2.0 / 3.0 * 4.0 * 1e4).abs() < 1e-9);
        assert_eq!(
            scal.mults, ours.mults,
            "same arithmetic, different movement"
        );
    }

    #[test]
    fn table2_rows() {
        let ours = table2_ours(10, 16);
        let l = table2_l(16); // (16+4+4)/2 = 12
        assert_eq!(l, 12.0);
        assert_eq!(ours.writes, 200.0);
        assert_eq!(ours.reads, 1200.0);
        assert_eq!(ours.transfer, 1400.0);
        let scal = table2_scalapack(10, 16);
        assert_eq!(scal.reads, 1600.0);
        assert!(scal.transfer > ours.transfer);
    }

    #[test]
    fn byte_conversions() {
        let r = table1_ours(10, 1);
        assert_eq!(r.write_bytes(), r.writes * 8.0);
        assert_eq!(r.read_bytes(), r.reads * 8.0);
        assert_eq!(r.transfer_bytes(), r.transfer * 8.0);
    }

    #[test]
    fn scalapack_transfer_overtakes_ours_at_scale() {
        // At small m0 ScaLAPACK moves less data; past the crossover it
        // moves more — the paper's Section 7.5 scalability argument.
        let cross = lu_transfer_crossover_m0();
        assert!(cross > 4, "ScaLAPACK should win at very small clusters");
        assert!(cross <= 64, "and lose within the paper's cluster sizes");
        let below = cross / 2;
        assert!(table1_ours(1000, below).transfer > table1_scalapack(1000, below).transfer);
        let above = cross * 2;
        assert!(table1_ours(1000, above).transfer < table1_scalapack(1000, above).transfer);
    }

    #[test]
    fn arithmetic_totals_are_n_cubed() {
        // LU + inversion together: n³/3 + 2n³/3 = n³ multiplications,
        // matching Section 2's operation count for a full inversion.
        let n = 50;
        let total = table1_ours(n, 8).mults + table2_ours(n, 8).mults;
        assert!((total - (n as f64).powi(3)).abs() < 1e-6);
    }
}
