//! Observability glue: the cluster's labeled metric registry joined with
//! the kernel engine's process-wide perf counters into one exportable
//! snapshot.
//!
//! The registry ([`mrinv_mapreduce::obs::Registry`]) lives on the cluster
//! and the GEMM perf counters ([`mrinv_matrix::kernel::perf`]) are
//! process-wide statics — this module is the seam that presents both as a
//! single [`ObsSnapshot`] for Prometheus/JSON export (the `mrinv`
//! binary's `--metrics-prom`/`--metrics-json` flags).

pub use mrinv_mapreduce::obs::{ObsSnapshot, Registry};

use mrinv_mapreduce::obs::Labels;
use mrinv_mapreduce::Cluster;

/// Appends one series group per GEMM backend that recorded at least one
/// call: cumulative calls/FLOPs counters plus wall-time, packing-time,
/// and effective-GFLOP/s gauges, all labeled `{backend=...}`.
pub fn kernel_perf_series(snap: &mut ObsSnapshot) {
    for p in mrinv_matrix::kernel::perf::snapshot() {
        let labels = Labels::new().backend(p.backend);
        snap.push_counter("mrinv_kernel_calls_total", labels.clone(), p.calls);
        snap.push_counter("mrinv_kernel_flops_total", labels.clone(), p.flops);
        snap.push_gauge("mrinv_kernel_seconds", labels.clone(), p.secs);
        snap.push_gauge("mrinv_kernel_pack_seconds", labels.clone(), p.pack_secs);
        snap.push_gauge("mrinv_kernel_gflops", labels.clone(), p.gflops());
        snap.push_counter(
            "mrinv_kernel_parallel_calls_total",
            labels.clone(),
            p.par_calls,
        );
        snap.push_counter(
            "mrinv_kernel_serial_fallback_calls_total",
            labels,
            p.fallback_calls,
        );
    }
}

/// The full observability snapshot of a cluster: every registry series,
/// the DFS byte/replica-hit bridge ([`Cluster::obs_snapshot`]), and the
/// kernel perf counters.
pub fn full_snapshot(cluster: &Cluster) -> ObsSnapshot {
    let mut snap = cluster.obs_snapshot();
    kernel_perf_series(&mut snap);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_matrix::kernel::{self, notrans};
    use mrinv_matrix::Matrix;

    #[test]
    fn kernel_series_appear_when_perf_is_enabled() {
        kernel::perf::reset();
        kernel::perf::set_enabled(true);
        let a = Matrix::zeros(8, 8);
        let b = Matrix::zeros(8, 8);
        let mut c = Matrix::zeros(8, 8);
        kernel::gemm(1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
        kernel::perf::set_enabled(false);

        let mut snap = ObsSnapshot::default();
        kernel_perf_series(&mut snap);
        assert!(snap
            .counters
            .iter()
            .any(|s| s.name == "mrinv_kernel_calls_total" && s.value >= 1));
        assert!(snap
            .gauges
            .iter()
            .any(|s| s.name == "mrinv_kernel_gflops" && s.labels.backend.is_some()));
        let text = snap.prometheus_text();
        mrinv_mapreduce::obs::validate_prometheus_text(&text).unwrap();
        kernel::perf::reset();
    }
}
