//! The final MapReduce job: triangular inversion and the product
//! `A^-1 = U^-1 · L^-1 · P` (Section 5.4).
//!
//! * **mappers** — half invert `L` by computing interleaved columns of
//!   `L^-1` (mapper `k` computes columns `k, k+m, k+2m, ...` — the paper's
//!   load-balancing assignment: "Mapper0 computes columns 0, 4, 8, 12,
//!   ..."), half invert `U` by computing interleaved rows of `U^-1`
//!   (through the transposed storage of Section 6.3). Each mapper writes
//!   its vectors grouped by the reducer cell that needs them, so reducers
//!   read only their own `(1/f1 + 1/f2)·n²` share (Section 6.2);
//! * **reducers** — each computes one block of `U^-1·L^-1` and writes it
//!   with its *permuted* target column indices: column `j` of the product
//!   is column `S[j]` of `A^-1` (Section 4.3).
//!
//! Because the interleaved vectors are non-contiguous, files carry explicit
//! index headers ([`IndexedBlock`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mrinv_mapreduce::job::{
    identity_partitioner, JobSpec, MapContext, Mapper, ReduceContext, Reducer,
};
use mrinv_mapreduce::runner::run_job;
use mrinv_mapreduce::{MrError, PipelineDriver, TaskRegistry};
use mrinv_matrix::block::even_ranges;
use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::kernel::{gemm, gemm_with, notrans, trans, Diag, Side, Strided, Uplo};
use mrinv_matrix::triangular::{solve_row_times_upper, trsm};
use mrinv_matrix::{Matrix, Permutation};
use serde::{de_field, DeError, Deserialize, Serialize, Value};

use crate::config::Optimizations;
use crate::error::{CoreError, Result};
use crate::factors::FactorRef;
use crate::partition::PartitionPlan;

/// A bundle of same-length vectors tagged with their global indices
/// (interleaved rows of `U^-1`, columns of `L^-1`, or permuted output
/// columns).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedBlock {
    /// Global index of each vector in `data`'s rows (or columns).
    pub indices: Vec<u64>,
    /// The vectors; orientation is up to the producer.
    pub data: Matrix,
}

/// Encodes an [`IndexedBlock`]: `[count u64][indices...][matrix]`.
pub fn encode_indexed(block: &IndexedBlock) -> Bytes {
    let mat = encode_binary(&block.data);
    let mut buf = BytesMut::with_capacity(8 + block.indices.len() * 8 + mat.len());
    buf.put_u64_le(block.indices.len() as u64);
    for &i in &block.indices {
        buf.put_u64_le(i);
    }
    buf.put_slice(&mat);
    buf.freeze()
}

/// Decodes an [`IndexedBlock`].
pub fn decode_indexed(mut data: &[u8]) -> Result<IndexedBlock> {
    if data.len() < 8 {
        return Err(CoreError::Invariant("indexed block truncated".into()));
    }
    let count = data.get_u64_le() as usize;
    if data.len() < count * 8 {
        return Err(CoreError::Invariant(
            "indexed block index list truncated".into(),
        ));
    }
    let mut indices = Vec::with_capacity(count);
    for _ in 0..count {
        indices.push(data.get_u64_le());
    }
    let matrix = decode_binary(data)?;
    Ok(IndexedBlock {
        indices,
        data: matrix,
    })
}

/// Map-task input for the final job.
#[derive(Debug, Clone)]
pub enum InvTaskInput {
    /// Invert `L`: compute columns `k, k+m, ...` of `L^-1`.
    LCols {
        /// Worker index within the `L` half.
        k: usize,
    },
    /// Invert `U`: compute rows `k, k+m, ...` of `U^-1`.
    URows {
        /// Worker index within the `U` half.
        k: usize,
    },
}

// Manual serde: the vendored derive macro cannot handle data-carrying
// enum variants, so the variants ship as a tagged object.
impl Serialize for InvTaskInput {
    fn to_value(&self) -> Value {
        let (kind, k) = match *self {
            InvTaskInput::LCols { k } => ("l", k),
            InvTaskInput::URows { k } => ("u", k),
        };
        Value::Object(vec![
            ("kind".to_string(), Value::String(kind.to_string())),
            ("k".to_string(), k.to_value()),
        ])
    }
}

impl Deserialize for InvTaskInput {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let kind: String = de_field(v, "kind")?;
        let k: usize = de_field(v, "k")?;
        match kind.as_str() {
            "l" => Ok(InvTaskInput::LCols { k }),
            "u" => Ok(InvTaskInput::URows { k }),
            other => Err(DeError(format!("unknown InvTaskInput kind {other:?}"))),
        }
    }
}

/// Registers this module's remote task family (see
/// [`crate::remote::exec_registry`]).
pub(crate) fn register(r: &mut TaskRegistry) {
    r.register::<TriInvMapper, TriInvReducer>("final-inverse");
}

#[derive(Serialize, Deserialize)]
struct TriInvMapper {
    dir: String,
    factors: FactorRef,
    opts: Optimizations,
    n: usize,
    m_l: usize,
    m_u: usize,
    row_blocks: Vec<(usize, usize)>,
    col_blocks: Vec<(usize, usize)>,
    num_cells: usize,
}

/// Computes the selected columns of `T^-1` for lower-triangular `T` by
/// solving `T·X = [e_{j0} e_{j1} ...]` in one batched [`trsm`] call. The
/// blocked solve turns the trailing updates into GEMM; under the unblocked
/// reference backend each column comes out bit-identical to the old
/// per-column `invert_lower_column` loop.
fn invert_lower_columns(t: &Matrix, cols: &[usize]) -> mrinv_matrix::Result<Matrix> {
    let n = t.rows();
    let mut x = Matrix::zeros(n, cols.len());
    for (slot, &j) in cols.iter().enumerate() {
        x[(j, slot)] = 1.0;
    }
    trsm(Side::Left, Uplo::Lower, Diag::NonUnit, 1.0, t, &mut x)?;
    Ok(x)
}

impl TriInvMapper {
    /// Splits this worker's interleaved vector indices by block, returning
    /// `(block_idx, indices)` for each non-empty block.
    fn group_by_block(indices: &[usize], blocks: &[(usize, usize)]) -> Vec<(usize, Vec<usize>)> {
        blocks
            .iter()
            .enumerate()
            .filter_map(|(bi, &(b0, b1))| {
                let in_block: Vec<usize> = indices
                    .iter()
                    .copied()
                    .filter(|&i| i >= b0 && i < b1)
                    .collect();
                if in_block.is_empty() {
                    None
                } else {
                    Some((bi, in_block))
                }
            })
            .collect()
    }
}

impl Mapper for TriInvMapper {
    type Input = InvTaskInput;
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &InvTaskInput,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        match *input {
            InvTaskInput::LCols { k } => {
                let l = self.factors.assemble_l(ctx)?;
                let my_cols: Vec<usize> = (k..self.n).step_by(self.m_l).collect();
                // Solve all of this worker's columns in one batched trsm,
                // then scatter into per-cell files.
                let kernel = std::time::Instant::now();
                let computed = invert_lower_columns(&l, &my_cols).map_err(CoreError::from)?;
                ctx.charge_kernel(kernel.elapsed());
                for (bi, cols) in Self::group_by_block(&my_cols, &self.col_blocks) {
                    let mut data = if self.opts.transpose_u {
                        // Columns stored as rows (transposed layout).
                        Matrix::zeros(cols.len(), self.n)
                    } else {
                        Matrix::zeros(self.n, cols.len())
                    };
                    for (slot, &j) in cols.iter().enumerate() {
                        let pos = my_cols.iter().position(|&c| c == j).unwrap();
                        let col = computed.col(pos);
                        if self.opts.transpose_u {
                            data.row_mut(slot).copy_from_slice(&col);
                        } else {
                            for i in 0..self.n {
                                data[(i, slot)] = col[i];
                            }
                        }
                    }
                    let block = IndexedBlock {
                        indices: cols.iter().map(|&c| c as u64).collect(),
                        data,
                    };
                    ctx.write(
                        &format!("{}/INV/L.{k}.{bi}", self.dir),
                        encode_indexed(&block),
                    );
                }
            }
            InvTaskInput::URows { k } => {
                let my_rows: Vec<usize> = (k..self.n).step_by(self.m_u).collect();
                let mut computed: Vec<Vec<f64>> = Vec::with_capacity(my_rows.len());
                if self.opts.transpose_u {
                    // Row i of U^-1 is column i of (Uᵀ)^-1, and Uᵀ is the
                    // lower-triangular matrix we store directly.
                    let ut = self.factors.assemble_u_t(ctx)?;
                    let kernel = std::time::Instant::now();
                    let solved = invert_lower_columns(&ut, &my_rows).map_err(CoreError::from)?;
                    for pos in 0..my_rows.len() {
                        computed.push(solved.col(pos));
                    }
                    ctx.charge_kernel(kernel.elapsed());
                } else {
                    // Ablation path: row-major U, solve eᵢᵀ = x·U with
                    // column-striding access.
                    let u = self.factors.assemble_u(ctx)?;
                    let kernel = std::time::Instant::now();
                    for &i in &my_rows {
                        let mut e = vec![0.0; self.n];
                        e[i] = 1.0;
                        computed.push(solve_row_times_upper(&u, &e).map_err(CoreError::from)?);
                    }
                    ctx.charge_kernel(kernel.elapsed());
                }
                for (bi, rows) in Self::group_by_block(&my_rows, &self.row_blocks) {
                    let mut data = Matrix::zeros(rows.len(), self.n);
                    for (slot, &i) in rows.iter().enumerate() {
                        let pos = my_rows.iter().position(|&r| r == i).unwrap();
                        data.row_mut(slot).copy_from_slice(&computed[pos]);
                    }
                    let block = IndexedBlock {
                        indices: rows.iter().map(|&r| r as u64).collect(),
                        data,
                    };
                    ctx.write(
                        &format!("{}/INV/U.{k}.{bi}", self.dir),
                        encode_indexed(&block),
                    );
                }
            }
        }
        // Control pairs: assign product cells round-robin across map tasks.
        let mut cell = ctx.task_index();
        let stride = ctx.num_tasks();
        while cell < self.num_cells {
            ctx.emit(cell, cell);
            cell += stride;
        }
        Ok(())
    }
}

struct TriInvReducer {
    dir: String,
    n: usize,
    m_l: usize,
    m_u: usize,
    row_blocks: Vec<(usize, usize)>,
    col_blocks: Vec<(usize, usize)>,
    perm: Permutation,
    opts: Optimizations,
}

// Manual serde: `Permutation` is foreign, so `perm` ships inline as its
// `S`-array.
impl Serialize for TriInvReducer {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dir".to_string(), self.dir.to_value()),
            ("n".to_string(), self.n.to_value()),
            ("m_l".to_string(), self.m_l.to_value()),
            ("m_u".to_string(), self.m_u.to_value()),
            ("row_blocks".to_string(), self.row_blocks.to_value()),
            ("col_blocks".to_string(), self.col_blocks.to_value()),
            ("perm".to_string(), self.perm.as_slice().to_value()),
            ("opts".to_string(), self.opts.to_value()),
        ])
    }
}

impl Deserialize for TriInvReducer {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        Ok(TriInvReducer {
            dir: de_field(v, "dir")?,
            n: de_field(v, "n")?,
            m_l: de_field(v, "m_l")?,
            m_u: de_field(v, "m_u")?,
            row_blocks: de_field(v, "row_blocks")?,
            col_blocks: de_field(v, "col_blocks")?,
            perm: Permutation::from_vec(de_field(v, "perm")?),
            opts: de_field(v, "opts")?,
        })
    }
}

impl Reducer for TriInvReducer {
    type Key = usize;
    type Value = usize;
    type Output = ();

    fn reduce(
        &self,
        key: &usize,
        _values: &[usize],
        ctx: &mut ReduceContext,
    ) -> std::result::Result<(), MrError> {
        let cell = *key;
        let bi = cell / self.col_blocks.len();
        let bj = cell % self.col_blocks.len();
        let (r0, r1) = self.row_blocks[bi];
        let (c0, c1) = self.col_blocks[bj];
        if r0 >= r1 || c0 >= c1 {
            return Ok(());
        }

        // Assemble this cell's rows of U^-1.
        let mut u_rows = Matrix::zeros(r1 - r0, self.n);
        for k in 0..self.m_u {
            let path = format!("{}/INV/U.{k}.{bi}", self.dir);
            if !ctx.exists(&path) {
                continue; // that worker had no rows in this block
            }
            let block = decode_indexed(&ctx.read(&path)?)?;
            for (slot, &i) in block.indices.iter().enumerate() {
                u_rows
                    .row_mut(i as usize - r0)
                    .copy_from_slice(block.data.row(slot));
            }
        }

        // Assemble this cell's columns of L^-1 and multiply.
        let product = if self.opts.transpose_u {
            let mut l_cols_t = Matrix::zeros(c1 - c0, self.n);
            for k in 0..self.m_l {
                let path = format!("{}/INV/L.{k}.{bj}", self.dir);
                if !ctx.exists(&path) {
                    continue;
                }
                let block = decode_indexed(&ctx.read(&path)?)?;
                for (slot, &j) in block.indices.iter().enumerate() {
                    l_cols_t
                        .row_mut(j as usize - c0)
                        .copy_from_slice(block.data.row(slot));
                }
            }
            let kernel = std::time::Instant::now();
            let mut p = Matrix::zeros(u_rows.rows(), l_cols_t.rows());
            gemm(1.0, notrans(&u_rows), trans(&l_cols_t), 0.0, &mut p).map_err(CoreError::from)?;
            ctx.charge_kernel(kernel.elapsed());
            p
        } else {
            let mut l_cols = Matrix::zeros(self.n, c1 - c0);
            for k in 0..self.m_l {
                let path = format!("{}/INV/L.{k}.{bj}", self.dir);
                if !ctx.exists(&path) {
                    continue;
                }
                let block = decode_indexed(&ctx.read(&path)?)?;
                for (slot, &j) in block.indices.iter().enumerate() {
                    for i in 0..self.n {
                        l_cols[(i, j as usize - c0)] = block.data[(i, slot)];
                    }
                }
            }
            // Ablation path: Equation 7's column-striding product, pinned
            // to the Strided backend so it measures that exact loop order.
            let kernel = std::time::Instant::now();
            let mut p = Matrix::zeros(u_rows.rows(), l_cols.cols());
            gemm_with(
                &Strided,
                1.0,
                notrans(&u_rows),
                notrans(&l_cols),
                0.0,
                &mut p,
            )
            .map_err(CoreError::from)?;
            ctx.charge_kernel(kernel.elapsed());
            p
        };

        // Column j of the product is column S[j] of A^-1 (Section 4.3).
        let out = IndexedBlock {
            indices: (c0..c1).map(|j| self.perm.source_of(j) as u64).collect(),
            data: product,
        };
        ctx.write(
            &format!("{}/RESULT/A.{cell}.{r0}", self.dir),
            encode_indexed(&out),
        );
        Ok(())
    }
}

/// Runs the final inversion job over decomposed factors, returning the
/// assembled `A^-1`.
///
/// The result also remains in the DFS under `<dir>/RESULT/` for downstream
/// consumers (the paper's Hadoop-workflow motivation); the in-memory
/// assembly here is an API convenience and is not charged to the simulated
/// clock.
pub fn invert_factors_mr(
    driver: &mut PipelineDriver<'_>,
    factors: &FactorRef,
    plan: &PartitionPlan,
    opts: &Optimizations,
) -> Result<Matrix> {
    let cluster = driver.cluster();
    let n = factors.n();
    let dir = plan.root.clone();
    let row_blocks = even_ranges(n, plan.grid.0);
    let col_blocks = even_ranges(n, plan.grid.1);
    let num_cells = plan.grid.0 * plan.grid.1;

    let mut inputs = Vec::new();
    for k in 0..plan.m_l.min(n) {
        inputs.push(InvTaskInput::LCols { k });
    }
    for k in 0..plan.m_u.min(n) {
        inputs.push(InvTaskInput::URows { k });
    }

    let perm = factors.perm();
    let mapper = TriInvMapper {
        dir: dir.clone(),
        factors: factors.clone(),
        opts: *opts,
        n,
        m_l: plan.m_l.min(n),
        m_u: plan.m_u.min(n),
        row_blocks: row_blocks.clone(),
        col_blocks: col_blocks.clone(),
        num_cells,
    };
    let reducer = TriInvReducer {
        dir: dir.clone(),
        n,
        m_l: plan.m_l.min(n),
        m_u: plan.m_u.min(n),
        row_blocks: row_blocks.clone(),
        col_blocks: col_blocks.clone(),
        perm,
        opts: *opts,
    };

    let spec = JobSpec::new(format!("final-inverse:{dir}"))
        .reducers(num_cells)
        .partitioner(identity_partitioner)
        .shuffle_sized()
        .remote("final-inverse");
    driver.step(spec.fingerprint(), |c| {
        run_job(c, &spec, &mapper, &reducer, &inputs).map(|(_out, report)| report)
    })?;

    // Assemble the final matrix from the RESULT files (uncharged).
    let mut result = Matrix::zeros(n, n);
    for (bi, &(r0, r1)) in row_blocks.iter().enumerate() {
        for (bj, &(c0, c1)) in col_blocks.iter().enumerate() {
            if r0 >= r1 || c0 >= c1 {
                continue;
            }
            let cell = bi * col_blocks.len() + bj;
            let data = cluster.dfs.read(&format!("{dir}/RESULT/A.{cell}.{r0}"))?;
            let block = decode_indexed(&data)?;
            for (slot, &target_col) in block.indices.iter().enumerate() {
                for i in r0..r1 {
                    result[(i, target_col as usize)] = block.data[(i - r0, slot)];
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_matrix::random::random_matrix;

    #[test]
    fn indexed_block_round_trips() {
        let b = IndexedBlock {
            indices: vec![3, 1, 4, 1],
            data: random_matrix(4, 7, 1),
        };
        let back = decode_indexed(&encode_indexed(&b)).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn indexed_block_rejects_corruption() {
        let b = IndexedBlock {
            indices: vec![0, 1],
            data: random_matrix(2, 2, 2),
        };
        let enc = encode_indexed(&b);
        assert!(decode_indexed(&enc[..4]).is_err());
        assert!(decode_indexed(&enc[..12]).is_err());
        assert!(decode_indexed(&[]).is_err());
    }

    #[test]
    fn empty_indexed_block() {
        let b = IndexedBlock {
            indices: vec![],
            data: Matrix::zeros(0, 0),
        };
        let back = decode_indexed(&encode_indexed(&b)).unwrap();
        assert!(back.indices.is_empty());
    }

    #[test]
    fn group_by_block_partitions_indices() {
        let blocks = vec![(0usize, 4usize), (4, 8), (8, 10)];
        let groups = TriInvMapper::group_by_block(&[0, 5, 9, 2, 7], &blocks);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (0, vec![0, 2]));
        assert_eq!(groups[1], (1, vec![5, 7]));
        assert_eq!(groups[2], (2, vec![9]));
        // Indices outside every block are dropped; empty blocks omitted.
        let groups = TriInvMapper::group_by_block(&[1], &blocks);
        assert_eq!(groups.len(), 1);
    }
}
