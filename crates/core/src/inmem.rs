//! In-memory recursive block LU decomposition and inversion.
//!
//! This is Algorithm 2 with all data in memory — the same mathematics as
//! the MapReduce pipeline but none of the DFS plumbing. It serves three
//! purposes:
//!
//! * the cross-checking reference for the distributed implementation
//!   (tests decompose the same matrices both ways);
//! * the single-node baseline for benchmarks;
//! * the shape of a Spark-style port (Section 8's future work keeps
//!   intermediates in memory; this module is exactly that dataflow).

use mrinv_matrix::block::BlockRange;
use mrinv_matrix::kernel::{gemm, notrans, trans};
use mrinv_matrix::lu::lu_decompose;
use mrinv_matrix::triangular::{
    invert_lower, invert_upper, solve_unit_lower_system, solve_upper_system_right,
};
use mrinv_matrix::{Matrix, Permutation, Result};

/// `U^-1 · L^-1` with `L^-1` packed transposed (both operands then stream
/// row-major — the Section 6.3 layout, preserved bit-for-bit from the old
/// `mul_parallel` under the Naive backend).
fn mul_inverse_factors(u_inv: &Matrix, l_inv: &Matrix) -> Result<Matrix> {
    let l_inv_t = l_inv.transpose();
    let mut c = Matrix::zeros(u_inv.rows(), l_inv.cols());
    gemm(1.0, notrans(u_inv), trans(&l_inv_t), 0.0, &mut c)?;
    Ok(c)
}

/// The result of a block LU decomposition: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct BlockLu {
    /// Unit lower-triangular factor.
    pub l: Matrix,
    /// Upper-triangular factor.
    pub u: Matrix,
    /// Row permutation.
    pub perm: Permutation,
}

/// Recursive block LU decomposition (Algorithm 2), splitting at `n/2` until
/// blocks are of order at most `nb`.
pub fn block_lu(a: &Matrix, nb: usize) -> Result<BlockLu> {
    assert!(nb >= 1, "nb must be positive");
    let n = a.order()?;
    if n <= nb {
        let f = lu_decompose(a)?;
        return Ok(BlockLu {
            l: f.unit_lower(),
            u: f.upper(),
            perm: f.perm,
        });
    }
    let half = n / 2;
    let q = a.split_quadrants(half)?;

    // (L1, U1, P1) = BlockLUDecom(A1)
    let top = block_lu(&q.a1, nb)?;

    // U2 = L1^-1 (P1 A2); L2' U1 = A3  (Equation 6, with pivoting on A2).
    let u2 = solve_unit_lower_system(&top.l, &top.perm.apply_rows(&q.a2))?;
    let l2p = solve_upper_system_right(&top.u, &q.a3)?;

    // B = A4 - L2' U2
    let mut b = q.a4;
    gemm(-1.0, notrans(&l2p), notrans(&u2), 1.0, &mut b)?;

    // (L3, U3, P2) = BlockLUDecom(B)
    let bottom = block_lu(&b, nb)?;

    // L2 = P2 L2'
    let l2 = bottom.perm.apply_rows(&l2p);

    // Assemble (Algorithm 2 lines 11-13).
    let mut l = Matrix::zeros(n, n);
    let mut u = Matrix::zeros(n, n);
    l.set_block(0, 0, &top.l)?;
    l.set_block(half, 0, &l2)?;
    l.set_block(half, half, &bottom.l)?;
    u.set_block(0, 0, &top.u)?;
    u.set_block(0, half, &u2)?;
    u.set_block(half, half, &bottom.u)?;
    let perm = Permutation::augment(&top.perm, &bottom.perm);
    Ok(BlockLu { l, u, perm })
}

/// Inverts `a` through the block LU decomposition:
/// `A^-1 = U^-1 L^-1 P` (Section 4.3).
///
/// ```
/// use mrinv::inmem::invert_block;
/// use mrinv_matrix::random::random_well_conditioned;
/// use mrinv_matrix::norms::inversion_residual;
///
/// let a = random_well_conditioned(32, 7);
/// let inv = invert_block(&a, 8).unwrap();
/// assert!(inversion_residual(&a, &inv).unwrap() < 1e-10);
/// ```
pub fn invert_block(a: &Matrix, nb: usize) -> Result<Matrix> {
    let f = block_lu(a, nb)?;
    let l_inv = invert_lower(&f.l)?;
    let u_inv = invert_upper(&f.u)?;
    Ok(f.perm.apply_cols(&mul_inverse_factors(&u_inv, &l_inv)?))
}

/// Single-node baseline: classical LU (Algorithm 1) plus triangular
/// inverses, no blocking.
pub fn invert_single_node(a: &Matrix) -> Result<Matrix> {
    let f = lu_decompose(a)?;
    let l_inv = invert_lower(&f.unit_lower())?;
    let u_inv = invert_upper(&f.upper())?;
    Ok(f.perm.apply_cols(&mul_inverse_factors(&u_inv, &l_inv)?))
}

/// Extracts the `A1` quadrant factors from a full decomposition, for tests
/// that validate Equation 5's block structure.
pub fn factor_quadrants(f: &BlockLu, half: usize) -> Result<(Matrix, Matrix, Matrix, Matrix)> {
    let n = f.l.rows();
    let l1 = f.l.block(BlockRange::new((0, half), (0, half)))?;
    let l2 = f.l.block(BlockRange::new((half, n), (0, half)))?;
    let u1 = f.u.block(BlockRange::new((0, half), (0, half)))?;
    let u2 = f.u.block(BlockRange::new((0, half), (half, n)))?;
    Ok((l1, l2, u1, u2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_matrix::norms::inversion_residual;
    use mrinv_matrix::random::{random_invertible, random_well_conditioned};
    use mrinv_matrix::PAPER_ACCURACY;

    #[test]
    fn block_lu_reconstructs_pa() {
        for &(n, nb) in &[(16usize, 4usize), (33, 8), (64, 16), (100, 7), (128, 128)] {
            let a = random_invertible(n, n as u64);
            let f = block_lu(&a, nb).unwrap();
            let pa = f.perm.apply_rows(&a);
            let lu = &f.l * &f.u;
            assert!(
                lu.approx_eq(&pa, 1e-7),
                "PA != LU for n={n} nb={nb}, diff={}",
                lu.max_abs_diff(&pa).unwrap()
            );
        }
    }

    #[test]
    fn factors_are_triangular() {
        let a = random_invertible(40, 3);
        let f = block_lu(&a, 8).unwrap();
        for i in 0..40 {
            assert_eq!(f.l[(i, i)], 1.0, "unit diagonal");
            for j in (i + 1)..40 {
                assert_eq!(f.l[(i, j)], 0.0);
                assert_eq!(f.u[(j, i)], 0.0);
            }
        }
    }

    #[test]
    fn block_lu_matches_single_node_on_dominant_matrices() {
        // On diagonally dominant matrices no pivoting occurs, so the block
        // method and the classical method produce identical factors.
        let a = random_well_conditioned(48, 9);
        let blocked = block_lu(&a, 12).unwrap();
        let classic = lu_decompose(&a).unwrap();
        assert!(blocked.perm.is_identity());
        assert!(blocked.l.approx_eq(&classic.unit_lower(), 1e-8));
        assert!(blocked.u.approx_eq(&classic.upper(), 1e-8));
    }

    #[test]
    fn invert_block_beats_paper_accuracy() {
        for &(n, nb) in &[(24usize, 6usize), (50, 16), (96, 32)] {
            let a = random_well_conditioned(n, n as u64 + 1);
            let inv = invert_block(&a, nb).unwrap();
            let res = inversion_residual(&a, &inv).unwrap();
            assert!(res < PAPER_ACCURACY, "residual {res} for n={n}");
        }
    }

    #[test]
    fn invert_block_handles_pivoting_matrices() {
        // General random matrices *require* pivoting.
        for seed in 0..3 {
            let a = random_invertible(40, 100 + seed);
            let inv = invert_block(&a, 10).unwrap();
            let res = inversion_residual(&a, &inv).unwrap();
            assert!(res < 1e-6, "residual {res} for seed {seed}");
        }
    }

    #[test]
    fn single_node_and_block_agree() {
        let a = random_invertible(36, 77);
        let b1 = invert_block(&a, 9).unwrap();
        let b2 = invert_single_node(&a).unwrap();
        assert!(b1.approx_eq(&b2, 1e-7));
    }

    #[test]
    fn nb_larger_than_n_degenerates_to_single_node() {
        let a = random_invertible(20, 5);
        let f = block_lu(&a, 1000).unwrap();
        let classic = lu_decompose(&a).unwrap();
        assert!(f.l.approx_eq(&classic.unit_lower(), 0.0));
        assert!(f.u.approx_eq(&classic.upper(), 0.0));
    }

    #[test]
    fn equation5_block_structure_holds() {
        let n = 32;
        let half = 16;
        let a = random_invertible(n, 11);
        let f = block_lu(&a, half).unwrap();
        let (l1, l2, u1, u2) = factor_quadrants(&f, half).unwrap();
        let q = a.split_quadrants(half).unwrap();
        let pa = f.perm.apply_rows(&a);
        let paq = pa.split_quadrants(half).unwrap();
        // L1 U1 = (P A)_1, L1 U2 = (P A)_2, L2 U1 = (P A)_3.
        assert!((&l1 * &u1).approx_eq(&paq.a1, 1e-8));
        assert!((&l1 * &u2).approx_eq(&paq.a2, 1e-8));
        assert!((&l2 * &u1).approx_eq(&paq.a3, 1e-8));
        let _ = q;
    }

    #[test]
    fn singular_matrix_propagates_error() {
        let mut a = random_well_conditioned(16, 1);
        // Make two rows identical.
        let row = a.row(3).to_vec();
        a.row_mut(7).copy_from_slice(&row);
        assert!(invert_block(&a, 4).is_err());
    }

    #[test]
    fn order_one_matrix() {
        let a = Matrix::from_rows(&[&[2.0]]).unwrap();
        let inv = invert_block(&a, 1).unwrap();
        assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
    }
}
