//! Remote-execution wiring: the task-family registry that lets worker
//! processes (the [`TcpWorkers`](mrinv_mapreduce::TcpWorkers) backend)
//! decode and run this crate's mappers and reducers.
//!
//! Every job family the inversion pipeline submits is registered here
//! under a stable name (the same name each `JobSpec` declares via
//! `.remote(..)`); the `mrinv-worker` binary calls [`exec_registry`] at
//! startup so driver and worker agree on the codec for each family.

use mrinv_mapreduce::job::{MapContext, Mapper};
use mrinv_mapreduce::{MrError, TaskRegistry};
use serde::{Deserialize, Serialize};

/// Environment variable set by the `mrinv-worker` binary. The
/// [`DieOnceMapper`] probe only terminates the process when it is set,
/// so running the probe in-process (e.g. from a unit test) cannot kill
/// the test harness.
pub const WORKER_ENV: &str = "MRINV_WORKER";

/// Fault-injection probe used by the backend tests: the first time it
/// runs it writes a marker file and kills its own process (simulating a
/// worker crash mid-wave); the retried attempt sees the marker and
/// succeeds. Outside a worker process it writes the marker and returns
/// normally.
#[derive(Serialize, Deserialize)]
pub struct DieOnceMapper {
    /// DFS path of the "already died once" marker file.
    pub marker: String,
}

impl Mapper for DieOnceMapper {
    type Input = ();
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        _input: &(),
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        if ctx.exists(&self.marker) {
            return Ok(());
        }
        ctx.write(&self.marker, bytes::Bytes::from_static(b"died"));
        if std::env::var_os(WORKER_ENV).is_some() {
            // Flush happened through the live DFS connection above; now
            // die the way a crashed worker process does.
            std::process::exit(17);
        }
        Ok(())
    }
}

/// Builds the [`TaskRegistry`] covering every remote-capable job family
/// in this crate. Both the driver (to encode task descriptors) and the
/// `mrinv-worker` binary (to decode and run them) must use this exact
/// registry.
pub fn exec_registry() -> TaskRegistry {
    let mut r = TaskRegistry::new();
    crate::partition::register(&mut r);
    crate::ops::register(&mut r);
    crate::lu_mr::register(&mut r);
    crate::tri_inv_mr::register(&mut r);
    r.register_map_only::<DieOnceMapper>("die-once");
    r
}
