//! The unified front door: one fluent [`Request`] builder for inversion,
//! LU decomposition, and linear solves, returning one typed [`Outcome`].
//!
//! ```
//! use mrinv::{InversionConfig, Request};
//! use mrinv_mapreduce::Cluster;
//! use mrinv_matrix::random::random_well_conditioned;
//!
//! let cluster = Cluster::medium(4);
//! let a = random_well_conditioned(32, 7);
//! let out = Request::invert(&a)
//!     .config(&InversionConfig::with_nb(8))
//!     .submit(&cluster)
//!     .unwrap();
//! assert_eq!(out.report.jobs, mrinv::schedule::total_jobs(32, 8));
//! let _inverse = out.into_inverse();
//! ```
//!
//! Every consumer — the CLI, the `mrinv-serve` network service, the repro
//! experiments, and the tests — goes through this one type; the server is
//! just the network projection of it. A request can pin its run directory
//! and checkpoint mode (the crash/resume contract of the historical
//! `invert_run`), attach right-hand sides to any operation, and attach a
//! [`FactorCache`] so repeated requests for the same (matrix, config)
//! skip the pipeline entirely.

use std::sync::Arc;

use mrinv_mapreduce::{Cluster, RunId};
use mrinv_matrix::triangular::{back_substitution, forward_substitution};
use mrinv_matrix::{Matrix, Permutation};

use crate::cache::{cache_key, AssembledFactors, CacheEntryView, FactorCache};
use crate::config::InversionConfig;
use crate::error::{CoreError, Result};
use crate::inverse::{fresh_run_id, make_driver, run_fingerprint, Checkpoint};
use crate::lu_mr::{lu_decompose_mr, BlockView};
use crate::partition::{ingest_input, run_partition_job, PartitionPlan};
use crate::report::RunReport;
use crate::source::MasterIo;
use crate::tri_inv_mr::invert_factors_mr;

/// What a [`Request`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Full pipeline of Figure 2: partition job → LU pipeline → final
    /// inversion job.
    Invert,
    /// Partition + LU pipeline only; the factors are assembled on the
    /// master for the caller.
    Lu,
    /// Partition + LU pipeline, then master-side substitution
    /// (`L·y = P·b`, `U·x = y`) per right-hand side.
    Solve,
}

impl Op {
    /// Stable lowercase name (obs labels, wire protocol, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Op::Invert => "invert",
            Op::Lu => "lu",
            Op::Solve => "solve",
        }
    }
}

/// Whether (and how) the factor cache participated in an [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache was attached to the request.
    Bypass,
    /// A cache was attached but held no usable entry; the pipeline ran
    /// (and primed the cache for next time).
    Miss,
    /// Served from cached factors: zero pipeline jobs, zero simulated
    /// seconds.
    Hit,
}

/// Assembled LU factors returned by an [`Op::Lu`] outcome.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Unit lower-triangular factor.
    pub l: Matrix,
    /// Upper-triangular factor.
    pub u: Matrix,
    /// Pivot permutation with `P·A = L·U`.
    pub perm: Permutation,
}

/// A fully described unit of work against a cluster: operation, input,
/// configuration, run placement, and (optionally) a factor cache.
#[derive(Debug)]
pub struct Request<'a> {
    a: &'a Matrix,
    op: Op,
    rhs: Vec<Vec<f64>>,
    cfg: InversionConfig,
    run: Option<RunId>,
    mode: Checkpoint,
    cache: Option<&'a FactorCache>,
}

impl<'a> Request<'a> {
    fn new(a: &'a Matrix, op: Op) -> Self {
        Request {
            a,
            op,
            rhs: Vec::new(),
            cfg: InversionConfig::default(),
            run: None,
            mode: Checkpoint::Disabled,
            cache: None,
        }
    }

    /// An inversion request for `a`.
    pub fn invert(a: &'a Matrix) -> Self {
        Request::new(a, Op::Invert)
    }

    /// An LU-decomposition request for `a`.
    pub fn lu(a: &'a Matrix) -> Self {
        Request::new(a, Op::Lu)
    }

    /// A linear-solve request for `a`; add right-hand sides with
    /// [`Request::rhs`].
    pub fn solve(a: &'a Matrix) -> Self {
        Request::new(a, Op::Solve)
    }

    /// Adds one right-hand side `b` (length `n`). Valid on any operation:
    /// a solve requires at least one, while invert/lu requests with
    /// right-hand sides additionally return the substituted solutions.
    pub fn rhs(mut self, b: impl Into<Vec<f64>>) -> Self {
        self.rhs.push(b.into());
        self
    }

    /// Adds many right-hand sides at once.
    pub fn rhs_all(mut self, rhs: impl IntoIterator<Item = Vec<f64>>) -> Self {
        self.rhs.extend(rhs);
        self
    }

    /// Sets the inversion configuration (block bound and optimization
    /// toggles). Defaults to [`InversionConfig::default`].
    pub fn config(mut self, cfg: &InversionConfig) -> Self {
        self.cfg = cfg.clone();
        self
    }

    /// Shorthand for [`Request::config`] with
    /// [`InversionConfig::with_nb`].
    pub fn nb(mut self, nb: usize) -> Self {
        self.cfg = InversionConfig::with_nb(nb);
        self
    }

    /// Pins the run directory without checkpointing (the historical
    /// `*_run(..., Checkpoint::Disabled)` behaviour).
    pub fn workdir(mut self, run: &RunId) -> Self {
        self.run = Some(run.clone());
        self.mode = Checkpoint::Disabled;
        self
    }

    /// Pins the run directory and records a checkpoint manifest after
    /// each completed job, discarding any stale manifest first.
    pub fn checkpoint(mut self, run: &RunId) -> Self {
        self.run = Some(run.clone());
        self.mode = Checkpoint::Enabled;
        self
    }

    /// Pins the run directory and replays its existing manifest: jobs
    /// whose configuration still matches and whose outputs survive are
    /// restored, the rest re-run (checkpointing stays on for them).
    /// Errors at submit time if no manifest exists.
    pub fn resume(mut self, run: &RunId) -> Self {
        self.run = Some(run.clone());
        self.mode = Checkpoint::Resume;
        self
    }

    /// Attaches a factor cache. A usable entry (same matrix bytes, same
    /// configuration, same cluster geometry, all factor files still
    /// present) short-circuits the pipeline — the cache takes precedence
    /// over any pinned run directory or checkpoint mode. A miss runs the
    /// pipeline and primes the cache.
    pub fn cache(mut self, cache: &'a FactorCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Executes the request on `cluster`.
    ///
    /// Cold runs are bit-identical to the historical free functions: the
    /// same driver, job sequence, manifest fingerprints, and master-side
    /// assembly. With [`Checkpoint::Enabled`], a driver crash mid-pipeline
    /// (e.g. [`mrinv_mapreduce::FaultPlan::kill_driver_after`], surfacing
    /// as [`mrinv_mapreduce::MrError::DriverKilled`]) leaves a manifest
    /// behind; resubmitting with [`Request::resume`] restores the
    /// completed prefix and re-runs only the remainder.
    pub fn submit(self, cluster: &Cluster) -> Result<Outcome> {
        let n = self.a.order()?;
        for (i, b) in self.rhs.iter().enumerate() {
            if b.len() != n {
                return Err(CoreError::Invariant(format!(
                    "rhs {i} has length {}, expected {n}",
                    b.len()
                )));
            }
        }
        if self.op == Op::Solve && self.rhs.is_empty() {
            return Err(CoreError::Invariant(
                "a solve request needs at least one right-hand side (Request::rhs)".to_string(),
            ));
        }
        if let Some(cache) = self.cache {
            let key = cache_key(self.a, &self.cfg, cluster);
            let need_inverse = self.op == Op::Invert;
            if let Some(view) = cache.lookup(key, need_inverse, &cluster.dfs) {
                return self.serve_hit(cluster, cache, key, view, n);
            }
        }
        self.run_pipeline(cluster, n)
    }

    /// Serves the request from the attached cache if (and only if) a
    /// usable entry exists; returns `Ok(None)` on a miss *without*
    /// counting it or running the pipeline. The `mrinv-serve` handler
    /// threads use this to answer hits concurrently while cold requests
    /// queue for the single pipeline executor.
    pub(crate) fn submit_cached_only(self, cluster: &Cluster) -> Result<Option<Outcome>> {
        let n = self.a.order()?;
        for (i, b) in self.rhs.iter().enumerate() {
            if b.len() != n {
                return Err(CoreError::Invariant(format!(
                    "rhs {i} has length {}, expected {n}",
                    b.len()
                )));
            }
        }
        if self.op == Op::Solve && self.rhs.is_empty() {
            return Err(CoreError::Invariant(
                "a solve request needs at least one right-hand side (Request::rhs)".to_string(),
            ));
        }
        let Some(cache) = self.cache else {
            return Ok(None);
        };
        let key = cache_key(self.a, &self.cfg, cluster);
        let need_inverse = self.op == Op::Invert;
        match cache.peek(key, need_inverse, &cluster.dfs) {
            Some(view) => self.serve_hit(cluster, cache, key, view, n).map(Some),
            None => Ok(None),
        }
    }

    /// Serves the request from a validated cache entry: no driver, no
    /// jobs, no counted I/O. The report carries zero pipeline numbers and
    /// names the priming run's directory.
    fn serve_hit(
        self,
        cluster: &Cluster,
        cache: &FactorCache,
        key: u64,
        view: CacheEntryView,
        n: usize,
    ) -> Result<Outcome> {
        let needs_factors = self.op != Op::Invert || !self.rhs.is_empty();
        let assembled = if needs_factors {
            Some(cache.assembled(key, &cluster.dfs)?)
        } else {
            None
        };
        let mut solutions = Vec::with_capacity(self.rhs.len());
        for b in &self.rhs {
            let f = assembled.as_ref().expect("assembled when rhs present");
            solutions.push(substitute(f, b)?);
        }
        let factors = match (self.op, &assembled) {
            (Op::Lu, Some(f)) => Some(LuFactors {
                l: f.l.clone(),
                u: f.u.clone(),
                perm: f.perm.clone(),
            }),
            _ => None,
        };
        let report = RunReport {
            n,
            nodes: cluster.nodes(),
            nb: view.nb,
            workdir: view.workdir,
            backend: "factor-cache".to_string(),
            ..RunReport::default()
        };
        Ok(Outcome {
            op: self.op,
            inverse: view.inverse,
            factors,
            solutions,
            cache: CacheStatus::Hit,
            report,
        })
    }

    /// The cold path: the exact pipeline the historical entry points ran.
    fn run_pipeline(self, cluster: &Cluster, n: usize) -> Result<Outcome> {
        let run = match &self.run {
            Some(run) => run.clone(),
            None => fresh_run_id(cluster),
        };
        let plan = PartitionPlan::new(n, cluster, &self.cfg, run.dir());
        ingest_input(cluster, self.a, &plan)?;

        // Invert runs every job; lu/solve stop before the final inversion
        // job.
        let planned_jobs = match self.op {
            Op::Invert => crate::schedule::total_jobs(n, self.cfg.nb),
            Op::Lu | Op::Solve => crate::schedule::total_jobs(n, self.cfg.nb) - 1,
        };
        let mut driver = make_driver(cluster, &run, self.mode)?;
        driver.set_config_fingerprint(run_fingerprint(&plan, &self.cfg.opts));
        if cluster.config.progress {
            driver.enable_progress(planned_jobs);
        }
        let (tree, _) = run_partition_job(&mut driver, &plan)?;
        let factors = lu_decompose_mr(&mut driver, BlockView::Tree(tree), &plan, &self.cfg.opts)?;
        let inverse = match self.op {
            Op::Invert => Some(invert_factors_mr(
                &mut driver,
                &factors,
                &plan,
                &self.cfg.opts,
            )?),
            Op::Lu | Op::Solve => None,
        };

        let mut report = driver.finish(n, self.cfg.nb);
        if cluster.trace.is_enabled() {
            report.audit = Some(crate::audit::cost_audit(
                cluster,
                driver.reports(),
                planned_jobs,
                n,
                self.cfg.nb,
                report.dfs_bytes_written,
            ));
        }

        // Master-side assembly reads the factor file forest back outside
        // the measured window, exactly as the historical `lu`/`solve`
        // entry points did (the paper's downstream consumers read the
        // files directly).
        let needs_factors = self.op != Op::Invert || !self.rhs.is_empty();
        let assembled = if needs_factors {
            let mut io = MasterIo::new(&cluster.dfs);
            let l = factors.assemble_l(&mut io)?;
            let u = factors.assemble_u(&mut io)?;
            Some(Arc::new(AssembledFactors {
                l,
                u,
                perm: factors.perm(),
            }))
        } else {
            None
        };

        let mut solutions = Vec::with_capacity(self.rhs.len());
        for b in &self.rhs {
            let f = assembled.as_ref().expect("assembled when rhs present");
            solutions.push(substitute(f, b)?);
        }

        if let Some(cache) = self.cache {
            let key = cache_key(self.a, &self.cfg, cluster);
            cache.insert(
                key,
                self.cfg.nb,
                factors.clone(),
                inverse.clone(),
                assembled.clone(),
                report.workdir.clone(),
            );
        }

        let out_factors = match (self.op, &assembled) {
            (Op::Lu, Some(f)) => Some(LuFactors {
                l: f.l.clone(),
                u: f.u.clone(),
                perm: f.perm.clone(),
            }),
            _ => None,
        };
        Ok(Outcome {
            op: self.op,
            inverse,
            factors: out_factors,
            solutions,
            cache: if self.cache.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Bypass
            },
            report,
        })
    }
}

/// `x` with `A·x = b` via the assembled factors: `P·b`, forward, back.
pub(crate) fn substitute(f: &AssembledFactors, b: &[f64]) -> Result<Vec<f64>> {
    let n = f.perm.len();
    // P·b: entry i of the permuted vector is b[S[i]].
    let pb: Vec<f64> = (0..n).map(|i| b[f.perm.source_of(i)]).collect();
    let y = forward_substitution(&f.l, &pb)?;
    Ok(back_substitution(&f.u, &y)?)
}

/// The typed result of a [`Request`]: whichever products the operation
/// yields, plus run accounting and the cache verdict.
#[derive(Debug, Clone)]
pub struct Outcome {
    op: Op,
    inverse: Option<Matrix>,
    factors: Option<LuFactors>,
    solutions: Vec<Vec<f64>>,
    /// Whether the factor cache served this request.
    pub cache: CacheStatus,
    /// Run accounting: the pipeline's delta report on a cold run, all
    /// zero pipeline numbers (jobs, simulated seconds, I/O) on a cache
    /// hit.
    pub report: RunReport,
}

impl Outcome {
    /// The operation that produced this outcome.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The computed inverse ([`Op::Invert`] outcomes only).
    pub fn inverse(&self) -> Option<&Matrix> {
        self.inverse.as_ref()
    }

    /// Consumes the outcome, returning the inverse.
    ///
    /// # Panics
    /// If the request was not an invert.
    pub fn into_inverse(self) -> Matrix {
        self.inverse
            .unwrap_or_else(|| panic!("outcome of {:?} has no inverse", self.op))
    }

    /// The assembled factors ([`Op::Lu`] outcomes only).
    pub fn factors(&self) -> Option<&LuFactors> {
        self.factors.as_ref()
    }

    /// Consumes the outcome, returning the assembled factors.
    ///
    /// # Panics
    /// If the request was not an LU decomposition.
    pub fn into_factors(self) -> LuFactors {
        self.factors
            .unwrap_or_else(|| panic!("outcome of {:?} has no assembled factors", self.op))
    }

    /// Solutions, one per right-hand side (in the order they were added).
    pub fn solutions(&self) -> &[Vec<f64>] {
        &self.solutions
    }

    /// Consumes the outcome, returning the solutions.
    pub fn into_solutions(self) -> Vec<Vec<f64>> {
        self.solutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use mrinv_mapreduce::{ClusterConfig, CostModel};
    use mrinv_matrix::norms::{inversion_residual, vec_norm};
    use mrinv_matrix::random::{random_invertible, random_well_conditioned};
    use mrinv_matrix::PAPER_ACCURACY;

    fn test_cluster(m0: usize) -> Cluster {
        let mut cfg = ClusterConfig::medium(m0);
        cfg.cost = CostModel::unit_for_tests();
        Cluster::new(cfg)
    }

    #[test]
    fn end_to_end_inversion_is_accurate() {
        let cluster = test_cluster(4);
        let a = random_well_conditioned(48, 1);
        let out = Request::invert(&a).nb(12).submit(&cluster).unwrap();
        assert_eq!(out.cache, CacheStatus::Bypass);
        let res = inversion_residual(&a, out.inverse().unwrap()).unwrap();
        assert!(res < PAPER_ACCURACY, "residual {res}");
    }

    #[test]
    fn inversion_matches_in_memory_reference() {
        let cluster = test_cluster(4);
        let a = random_invertible(40, 2);
        let out = Request::invert(&a).nb(10).submit(&cluster).unwrap();
        let reference = crate::inmem::invert_block(&a, 10).unwrap();
        assert!(out.into_inverse().approx_eq(&reference, 1e-7));
    }

    #[test]
    fn job_count_matches_schedule() {
        for &(n, nb) in &[(32usize, 8usize), (64, 8), (16, 16), (48, 6)] {
            let cluster = test_cluster(4);
            let a = random_invertible(n, n as u64);
            let out = Request::invert(&a).nb(nb).submit(&cluster).unwrap();
            assert_eq!(
                out.report.jobs,
                crate::schedule::total_jobs(n, nb),
                "n={n} nb={nb}"
            );
        }
    }

    #[test]
    fn lu_request_returns_valid_factors() {
        let cluster = test_cluster(4);
        let a = random_invertible(32, 5);
        let out = Request::lu(&a).nb(8).submit(&cluster).unwrap();
        let report_jobs = out.report.jobs;
        let f = out.into_factors();
        let pa = f.perm.apply_rows(&a);
        assert!((&f.l * &f.u).approx_eq(&pa, 1e-8));
        // LU alone runs the partition + pipeline jobs, no final job.
        assert_eq!(report_jobs, crate::schedule::total_jobs(32, 8) - 1);
    }

    #[test]
    fn report_accounts_io_and_time() {
        let cluster = test_cluster(4);
        let a = random_well_conditioned(32, 7);
        let out = Request::invert(&a).nb(8).submit(&cluster).unwrap();
        let r = &out.report;
        assert_eq!(r.n, 32);
        assert_eq!(r.nodes, 4);
        assert!(r.sim_secs > 0.0);
        assert!(r.master_secs > 0.0);
        assert!(
            r.dfs_bytes_written as f64 > (32.0 * 32.0) * 8.0,
            "at least the partition"
        );
        assert!(r.dfs_bytes_read > 0);
        assert_eq!(r.task_failures, 0);
        assert!((r.hours - r.sim_secs / 3600.0).abs() < 1e-12);
        // A plain run restores nothing and names its workdir.
        assert_eq!(r.restored_jobs, 0);
        assert_eq!(r.restored_sim_secs, 0.0);
        assert!(r.workdir.starts_with("mrinv/run-"), "workdir {}", r.workdir);
    }

    #[test]
    fn traced_run_reports_analytics_and_exports() {
        let mut ccfg = ClusterConfig::medium(4);
        ccfg.cost = CostModel::unit_for_tests();
        ccfg.tracing = true;
        let cluster = Cluster::new(ccfg);
        let a = random_well_conditioned(32, 31);
        let out = Request::invert(&a).nb(8).submit(&cluster).unwrap();
        let analytics = out.report.analytics.as_ref().expect("tracing enabled");
        // Every job contributes at least its map wave.
        assert!(analytics.waves.len() >= out.report.jobs as usize);
        assert_eq!(analytics.retried_attempts, 0);
        assert!(analytics.total_task_secs > 0.0);
        assert!(analytics.worst_straggler_ratio() >= 1.0);
        // The whole run exports as a valid Chrome trace with one process
        // per pipeline job (plus the cluster/master process).
        let events = cluster.trace.events();
        let json = mrinv_mapreduce::chrome_trace_json(&events);
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let spans = doc.get("traceEvents").unwrap().as_array().unwrap();
        let job_pids: std::collections::BTreeSet<u64> = spans
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter_map(|e| e.get("pid").and_then(|p| p.as_u64()))
            .filter(|&pid| pid > 0)
            .collect();
        assert_eq!(
            job_pids.len() as u64,
            out.report.jobs,
            "one trace process per job"
        );

        // Without tracing, the identical run carries no analytics.
        let plain = test_cluster(4);
        let out2 = Request::invert(&a).nb(8).submit(&plain).unwrap();
        assert!(out2.report.analytics.is_none());
        assert!(out2
            .inverse()
            .unwrap()
            .approx_eq(out.inverse().unwrap(), 0.0));
    }

    #[test]
    fn runs_are_isolated_by_workdir() {
        let cluster = test_cluster(2);
        let a = random_well_conditioned(16, 9);
        let out1 = Request::invert(&a).nb(4).submit(&cluster).unwrap();
        let out2 = Request::invert(&a).nb(4).submit(&cluster).unwrap();
        assert!(
            out1.inverse()
                .unwrap()
                .approx_eq(out2.inverse().unwrap(), 0.0),
            "same input, same output"
        );
        assert_ne!(
            out1.report.workdir, out2.report.workdir,
            "consecutive runs get distinct directories"
        );
    }

    #[test]
    fn optimizations_do_not_change_results() {
        let a = random_invertible(24, 11);
        let reference = {
            let cluster = test_cluster(4);
            Request::invert(&a)
                .nb(6)
                .submit(&cluster)
                .unwrap()
                .into_inverse()
        };
        let mut cfg = InversionConfig::with_nb(6);
        cfg.opts = Optimizations::none();
        let cluster = test_cluster(4);
        let unopt = Request::invert(&a)
            .config(&cfg)
            .submit(&cluster)
            .unwrap()
            .into_inverse();
        assert!(unopt.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn unoptimized_run_costs_more_io() {
        let a = random_well_conditioned(32, 13);
        let opt = {
            let cluster = test_cluster(4);
            Request::invert(&a).nb(8).submit(&cluster).unwrap().report
        };
        let mut cfg = InversionConfig::with_nb(8);
        cfg.opts = Optimizations::none();
        let unopt = {
            let cluster = test_cluster(4);
            Request::invert(&a)
                .config(&cfg)
                .submit(&cluster)
                .unwrap()
                .report
        };
        assert!(
            unopt.dfs_bytes_read > opt.dfs_bytes_read,
            "no block wrap => more read I/O ({} vs {})",
            unopt.dfs_bytes_read,
            opt.dfs_bytes_read
        );
        assert!(
            unopt.dfs_bytes_written > opt.dfs_bytes_written,
            "combining writes more"
        );
    }

    #[test]
    fn singular_input_errors_cleanly() {
        let cluster = test_cluster(2);
        let mut a = random_well_conditioned(16, 15);
        let row = a.row(2).to_vec();
        a.row_mut(9).copy_from_slice(&row);
        assert!(Request::invert(&a).nb(4).submit(&cluster).is_err());
    }

    #[test]
    fn non_square_input_rejected() {
        let cluster = test_cluster(2);
        let a = Matrix::zeros(4, 6);
        assert!(Request::invert(&a).submit(&cluster).is_err());
    }

    #[test]
    fn one_node_cluster_end_to_end() {
        let cluster = test_cluster(1);
        let a = random_well_conditioned(20, 21);
        let out = Request::invert(&a).nb(5).submit(&cluster).unwrap();
        assert!(inversion_residual(&a, out.inverse().unwrap()).unwrap() < PAPER_ACCURACY);
    }

    #[test]
    fn many_node_cluster_end_to_end() {
        let cluster = test_cluster(16);
        let a = random_well_conditioned(64, 23);
        let out = Request::invert(&a).nb(16).submit(&cluster).unwrap();
        assert!(inversion_residual(&a, out.inverse().unwrap()).unwrap() < PAPER_ACCURACY);
    }

    #[test]
    fn solve_recovers_known_solutions() {
        let c = test_cluster(4);
        let n = 48;
        let a = random_invertible(n, 3);
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..n).map(|i| ((i + k) as f64 * 0.31).cos()).collect())
            .collect();
        let rhs: Vec<Vec<f64>> = xs.iter().map(|x| a.mul_vec(x).unwrap()).collect();
        let out = Request::solve(&a).rhs_all(rhs).nb(12).submit(&c).unwrap();
        for (got, want) in out.solutions().iter().zip(&xs) {
            let err: Vec<f64> = got.iter().zip(want).map(|(g, w)| g - w).collect();
            assert!(vec_norm(&err) / vec_norm(want) < 1e-9);
        }
        assert!(out.report.jobs > 0);
        assert!(out.inverse().is_none(), "solve computes no inverse");
    }

    #[test]
    fn solve_validates_rhs() {
        let c = test_cluster(4);
        let a = random_well_conditioned(8, 1);
        // Wrong-length rhs is rejected before any job runs.
        let err = Request::solve(&a).rhs(vec![0.0; 7]).nb(4).submit(&c);
        assert!(err.is_err());
        // A solve with no rhs at all is rejected too.
        assert!(Request::solve(&a).nb(4).submit(&c).is_err());
        assert_eq!(c.metrics.snapshot().jobs, 0, "validation is free");
    }

    #[test]
    fn invert_with_rhs_returns_both_products() {
        let c = test_cluster(2);
        let n = 16;
        let a = random_invertible(n, 40);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let b = a.mul_vec(&x).unwrap();
        let out = Request::invert(&a).rhs(b).nb(4).submit(&c).unwrap();
        assert!(out.inverse().is_some());
        let got = &out.solutions()[0];
        let err: Vec<f64> = got.iter().zip(&x).map(|(g, w)| g - w).collect();
        assert!(vec_norm(&err) / vec_norm(&x) < 1e-9);
    }

    #[test]
    fn cached_solve_after_warm_lu_runs_zero_jobs() {
        let c = test_cluster(4);
        let cache = FactorCache::new();
        let n = 32;
        let a = random_invertible(n, 50);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        let b = a.mul_vec(&x).unwrap();

        // Warm: a cold lu primes the cache.
        let warm = Request::lu(&a).nb(8).cache(&cache).submit(&c).unwrap();
        assert_eq!(warm.cache, CacheStatus::Miss);
        let jobs_after_warm = c.metrics.snapshot().jobs;
        let files_after_warm = c.dfs.file_count();
        let io_after_warm = c.dfs.counters();

        // Hit: zero pipeline jobs, zero simulated seconds, no counted I/O,
        // no new DFS files.
        let hit = Request::solve(&a)
            .rhs(b.clone())
            .nb(8)
            .cache(&cache)
            .submit(&c)
            .unwrap();
        assert_eq!(hit.cache, CacheStatus::Hit);
        assert_eq!(hit.report.jobs, 0);
        assert_eq!(hit.report.sim_secs, 0.0);
        assert_eq!(hit.report.backend, "factor-cache");
        assert_eq!(c.metrics.snapshot().jobs, jobs_after_warm);
        assert_eq!(c.dfs.file_count(), files_after_warm);
        assert_eq!(c.dfs.counters(), io_after_warm, "hits are uncounted");

        // And the answer is bit-identical to a cold solve.
        let cold = Request::solve(&a).rhs(b).nb(8).submit(&c).unwrap();
        assert_eq!(hit.solutions(), cold.solutions());

        // An invert against the lu-primed entry is a miss (no inverse
        // stored) and upgrades the entry; the next invert hits.
        let miss = Request::invert(&a).nb(8).cache(&cache).submit(&c).unwrap();
        assert_eq!(miss.cache, CacheStatus::Miss);
        let hit2 = Request::invert(&a).nb(8).cache(&cache).submit(&c).unwrap();
        assert_eq!(hit2.cache, CacheStatus::Hit);
        assert!(hit2
            .inverse()
            .unwrap()
            .approx_eq(miss.inverse().unwrap(), 0.0));
    }

    #[test]
    fn cache_misses_on_any_perturbation() {
        let c = test_cluster(4);
        let cache = FactorCache::new();
        let a = random_invertible(16, 60);
        let _ = Request::lu(&a).nb(4).cache(&cache).submit(&c).unwrap();

        // Different nb: miss.
        let out = Request::lu(&a).nb(8).cache(&cache).submit(&c).unwrap();
        assert_eq!(out.cache, CacheStatus::Miss);
        // Different opts: miss.
        let mut cfg = InversionConfig::with_nb(4);
        cfg.opts = Optimizations::none();
        let out = Request::lu(&a)
            .config(&cfg)
            .cache(&cache)
            .submit(&c)
            .unwrap();
        assert_eq!(out.cache, CacheStatus::Miss);
        // Perturbed matrix: miss.
        let mut a2 = a.clone();
        a2[(0, 0)] += 1e-13;
        let out = Request::lu(&a2).nb(4).cache(&cache).submit(&c).unwrap();
        assert_eq!(out.cache, CacheStatus::Miss);
        // The original still hits.
        let out = Request::lu(&a).nb(4).cache(&cache).submit(&c).unwrap();
        assert_eq!(out.cache, CacheStatus::Hit);
    }
}
