//! Per-run accounting returned by the public API.
//!
//! The report type lives in the framework crate next to the
//! [`mrinv_mapreduce::PipelineDriver`] that produces it
//! ([`mrinv_mapreduce::PipelineDriver::finish`]); this module re-exports
//! it under the historical `mrinv::report::RunReport` path.

pub use mrinv_mapreduce::RunReport;

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_mapreduce::dfs::DfsCountersSnapshot;
    use mrinv_mapreduce::MetricsSnapshot;

    #[test]
    fn deltas_subtract() {
        let before = MetricsSnapshot {
            jobs: 2,
            sim_secs: 10.0,
            ..Default::default()
        };
        let after = MetricsSnapshot {
            jobs: 5,
            sim_secs: 7210.0,
            master_secs: 100.0,
            task_failures: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        let db = DfsCountersSnapshot {
            bytes_written: 100,
            bytes_read: 50,
            ..Default::default()
        };
        let da = DfsCountersSnapshot {
            bytes_written: 1100,
            bytes_read: 2050,
            ..Default::default()
        };
        let r = RunReport::from_deltas(64, 4, 8, &before, &after, &db, &da);
        assert_eq!(r.jobs, 3);
        assert!((r.sim_secs - 7200.0).abs() < 1e-9);
        assert!((r.hours - 2.0).abs() < 1e-9);
        assert_eq!(r.dfs_bytes_written, 1000);
        assert_eq!(r.dfs_bytes_read, 2000);
        assert_eq!(r.task_failures, 1);
        assert_eq!(r.shuffle_bytes, 64);
        assert!(r.analytics.is_none(), "no analytics without tracing");
        assert_eq!(
            r.data_local_fraction, 1.0,
            "no map tasks means vacuously local"
        );
        assert_eq!(r.remote_read_bytes, 0);
        assert_eq!(r.restored_jobs, 0, "deltas alone restore nothing");
        assert_eq!(r.workdir, "", "workdir is stamped by the driver");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = RunReport {
            n: 64,
            nodes: 4,
            nb: 8,
            jobs: 9,
            sim_secs: 123.5,
            master_secs: 10.25,
            task_failures: 2,
            dfs_bytes_written: 1 << 20,
            dfs_bytes_read: 1 << 21,
            shuffle_bytes: 4096,
            hours: 123.5 / 3600.0,
            workdir: "mrinv/run-0".to_string(),
            backend: "in-process".to_string(),
            restored_jobs: 3,
            restored_sim_secs: 41.25,
            data_local_fraction: 0.75,
            remote_read_bytes: 2048,
            analytics: None,
            audit: None,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"jobs\": 9"), "json {json}");
        assert!(json.contains("\"analytics\": null"));
        assert!(json.contains("\"restored_jobs\": 3"));
        assert!(json.contains("\"data_local_fraction\": 0.75"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n, report.n);
        assert_eq!(back.jobs, report.jobs);
        assert_eq!(back.sim_secs, report.sim_secs);
        assert_eq!(back.workdir, "mrinv/run-0");
        assert_eq!(back.restored_jobs, 3);
        assert_eq!(back.restored_sim_secs, 41.25);
        assert!(back.analytics.is_none());
    }
}
