//! Per-run accounting returned by the public API.

use mrinv_mapreduce::dfs::DfsCountersSnapshot;
use mrinv_mapreduce::{MetricsSnapshot, PipelineAnalytics};
use serde::{Deserialize, Serialize};

/// Everything one inversion run measured, as deltas over the cluster's
/// state when the run started.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Matrix order.
    pub n: usize,
    /// Cluster size `m0`.
    pub nodes: usize,
    /// Bound value used.
    pub nb: usize,
    /// MapReduce jobs executed (partition + LU pipeline + final).
    pub jobs: u64,
    /// Total simulated seconds (job waves + shuffles + launches + master
    /// work).
    pub sim_secs: f64,
    /// Simulated seconds of serial master-node work.
    pub master_secs: f64,
    /// Failed task attempts (all injected or transient).
    pub task_failures: u64,
    /// Logical DFS bytes written during the run.
    pub dfs_bytes_written: u64,
    /// Logical DFS bytes read during the run.
    pub dfs_bytes_read: u64,
    /// Bytes moved through shuffles.
    pub shuffle_bytes: u64,
    /// Simulated running time in hours (convenience for paper-style
    /// reporting).
    pub hours: f64,
    /// Per-wave straggler/lost-work analytics, present when the cluster
    /// ran with tracing enabled ([`mrinv_mapreduce::cluster::ClusterConfig::tracing`]).
    pub analytics: Option<PipelineAnalytics>,
}

impl RunReport {
    /// Builds a report from before/after snapshots.
    pub fn from_deltas(
        n: usize,
        nodes: usize,
        nb: usize,
        metrics_before: &MetricsSnapshot,
        metrics_after: &MetricsSnapshot,
        dfs_before: &DfsCountersSnapshot,
        dfs_after: &DfsCountersSnapshot,
    ) -> Self {
        let sim_secs = metrics_after.sim_secs - metrics_before.sim_secs;
        RunReport {
            n,
            nodes,
            nb,
            jobs: metrics_after.jobs - metrics_before.jobs,
            sim_secs,
            master_secs: metrics_after.master_secs - metrics_before.master_secs,
            task_failures: metrics_after.task_failures - metrics_before.task_failures,
            dfs_bytes_written: dfs_after.bytes_written - dfs_before.bytes_written,
            dfs_bytes_read: dfs_after.bytes_read - dfs_before.bytes_read,
            shuffle_bytes: metrics_after.shuffle_bytes - metrics_before.shuffle_bytes,
            hours: sim_secs / 3600.0,
            analytics: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract() {
        let before = MetricsSnapshot {
            jobs: 2,
            sim_secs: 10.0,
            ..Default::default()
        };
        let after = MetricsSnapshot {
            jobs: 5,
            sim_secs: 7210.0,
            master_secs: 100.0,
            task_failures: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        let db = DfsCountersSnapshot {
            bytes_written: 100,
            bytes_read: 50,
            ..Default::default()
        };
        let da = DfsCountersSnapshot {
            bytes_written: 1100,
            bytes_read: 2050,
            ..Default::default()
        };
        let r = RunReport::from_deltas(64, 4, 8, &before, &after, &db, &da);
        assert_eq!(r.jobs, 3);
        assert!((r.sim_secs - 7200.0).abs() < 1e-9);
        assert!((r.hours - 2.0).abs() < 1e-9);
        assert_eq!(r.dfs_bytes_written, 1000);
        assert_eq!(r.dfs_bytes_read, 2000);
        assert_eq!(r.task_failures, 1);
        assert_eq!(r.shuffle_bytes, 64);
        assert!(r.analytics.is_none(), "no analytics without tracing");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = RunReport {
            n: 64,
            nodes: 4,
            nb: 8,
            jobs: 9,
            sim_secs: 123.5,
            master_secs: 10.25,
            task_failures: 2,
            dfs_bytes_written: 1 << 20,
            dfs_bytes_read: 1 << 21,
            shuffle_bytes: 4096,
            hours: 123.5 / 3600.0,
            analytics: None,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"jobs\": 9"), "json {json}");
        assert!(json.contains("\"analytics\": null"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n, report.n);
        assert_eq!(back.jobs, report.jobs);
        assert_eq!(back.sim_secs, report.sim_secs);
        assert!(back.analytics.is_none());
    }
}
