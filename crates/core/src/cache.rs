//! The keyed LU-factor cache: factor once, serve many solves.
//!
//! The paper's motivating applications (Section 1) factor a matrix once
//! and then amortize it over many cheap downstream uses. [`FactorCache`]
//! makes that pattern first-class: a successful pipeline run primes the
//! cache with its [`FactorRef`] file forest (plus the inverse, for invert
//! runs), and any later [`crate::Request`] for the *same* matrix under
//! the *same* configuration is served straight from those files — zero
//! MapReduce jobs, zero simulated seconds.
//!
//! # Key semantics
//!
//! The key ([`cache_key`]) fingerprints everything that determines the
//! factor bytes: the full matrix contents (bit-exact, via the binary
//! codec), the block bound `nb`, the optimization toggles, and the
//! cluster partition geometry (`m0`, `m_l`, `m_u`, block-wrap grid). It
//! deliberately **excludes** the run directory — unlike the checkpoint
//! manifest's [`crate::run_fingerprint`], which includes `plan.root` so a
//! resume can't restore another run's files, the cache exists precisely
//! to share factors *across* runs. Determinism makes that sound: a
//! pipeline run is a pure function of (matrix, config, geometry), so two
//! runs with equal keys would have produced bit-identical factor files.
//!
//! # Invalidation
//!
//! Entries reference DFS files; they do not own them. Every lookup
//! re-validates that each referenced file still exists
//! ([`FactorRef::paths`]) and drops the entry — a miss, counted as an
//! invalidation — the moment any factor file was deleted.
//!
//! # Accounting
//!
//! Cache hits assemble factors through *uncounted* DFS reads
//! ([`mrinv_mapreduce::Dfs::read_uncounted`]): a hit served concurrently
//! with an in-flight pipeline run must not perturb that run's delta-based
//! [`crate::RunReport`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use mrinv_mapreduce::{Cluster, Dfs, Fingerprint, MrError};
use mrinv_matrix::io::encode_binary;
use mrinv_matrix::{Matrix, Permutation};
use parking_lot::Mutex;

use crate::config::InversionConfig;
use crate::error::{CoreError, Result};
use crate::factors::FactorRef;
use crate::partition::PartitionPlan;
use crate::source::BlockIo;

/// Cache key for a (matrix, config, cluster-geometry) triple.
///
/// Reuses the manifest [`Fingerprint`] machinery but replaces the
/// run-directory component with the full matrix bytes: the key must be
/// identical across run directories and processes, and must change when
/// any matrix entry, `nb`, optimization toggle, or partition-geometry
/// parameter changes.
pub fn cache_key(a: &Matrix, cfg: &InversionConfig, cluster: &Cluster) -> u64 {
    // The plan root does not affect geometry; an empty root keeps the key
    // workdir-independent.
    let plan = PartitionPlan::new(a.rows(), cluster, cfg, "");
    Fingerprint::new()
        .push_bytes(&encode_binary(a))
        .push_u64(plan.n as u64)
        .push_u64(plan.nb as u64)
        .push_u64(plan.m0 as u64)
        .push_u64(plan.m_l as u64)
        .push_u64(plan.m_u as u64)
        .push_u64(plan.grid.0 as u64)
        .push_u64(plan.grid.1 as u64)
        .push_u64(cfg.opts.separate_intermediate_files as u64)
        .push_u64(cfg.opts.block_wrap as u64)
        .push_u64(cfg.opts.transpose_u as u64)
        .finish()
}

/// Factors assembled into dense matrices, memoized per cache entry so a
/// million `solve(b)` calls pay the file-forest assembly once.
#[derive(Debug, Clone)]
pub struct AssembledFactors {
    /// Unit lower-triangular factor.
    pub l: Matrix,
    /// Upper-triangular factor.
    pub u: Matrix,
    /// Pivot permutation with `P·A = L·U`.
    pub perm: Permutation,
}

/// One cached factorization.
#[derive(Debug)]
struct Entry {
    nb: usize,
    factors: FactorRef,
    inverse: Option<Matrix>,
    assembled: Option<Arc<AssembledFactors>>,
    workdir: String,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the pipeline.
    pub misses: u64,
    /// Entries dropped because a referenced DFS file disappeared.
    pub invalidations: u64,
}

/// A validated view of a cache entry, handed to the request layer.
#[derive(Debug)]
pub(crate) struct CacheEntryView {
    pub(crate) nb: usize,
    pub(crate) inverse: Option<Matrix>,
    pub(crate) workdir: String,
}

/// Keyed, thread-safe LU-factor cache (see the module docs).
#[derive(Debug, Default)]
pub struct FactorCache {
    entries: Mutex<BTreeMap<u64, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

/// DFS access that stays invisible to byte accounting (cache hits must
/// not perturb concurrent runs' delta-based reports).
struct UncountedIo<'a> {
    dfs: &'a Dfs,
}

impl BlockIo for UncountedIo<'_> {
    fn read_bytes(&mut self, path: &str) -> std::result::Result<Bytes, MrError> {
        self.dfs.read_uncounted(path)
    }
    fn write_bytes(&mut self, path: &str, data: Bytes) {
        self.dfs.write_uncounted(path, data);
    }
}

impl FactorCache {
    /// An empty cache.
    pub fn new() -> Self {
        FactorCache::default()
    }

    /// Current counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.lock().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Validated lookup. `need_inverse` is set for invert requests: an
    /// entry primed by an `lu`/`solve` run holds factors but no inverse,
    /// and serving an invert from it would require master-side triangular
    /// inversion — a different numerical path than the pipeline, so it
    /// counts as a miss and the full pipeline runs (and upgrades the
    /// entry).
    pub(crate) fn lookup(&self, key: u64, need_inverse: bool, dfs: &Dfs) -> Option<CacheEntryView> {
        self.find(key, need_inverse, dfs, true)
    }

    /// Like [`FactorCache::lookup`] but a miss is *not* counted: the
    /// service's handler threads probe the cache before queueing a cold
    /// request for the executor, whose own full lookup counts the verdict.
    pub(crate) fn peek(&self, key: u64, need_inverse: bool, dfs: &Dfs) -> Option<CacheEntryView> {
        self.find(key, need_inverse, dfs, false)
    }

    fn find(
        &self,
        key: u64,
        need_inverse: bool,
        dfs: &Dfs,
        count_miss: bool,
    ) -> Option<CacheEntryView> {
        let mut entries = self.entries.lock();
        let usable = match entries.get(&key) {
            None => false,
            Some(e) => {
                if e.factors.paths().iter().any(|p| !dfs.exists(p)) {
                    // A factor file is gone: the entry is stale, drop it.
                    entries.remove(&key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    !need_inverse || e.inverse.is_some()
                }
            }
        };
        if !usable {
            if count_miss {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let e = entries.get(&key).expect("validated above");
        Some(CacheEntryView {
            nb: e.nb,
            inverse: e.inverse.clone(),
            workdir: e.workdir.clone(),
        })
    }

    /// Assembled `L`/`U`/`P` for a cached entry, memoized. Assembly runs
    /// outside the entry lock (uncounted reads), so concurrent first hits
    /// may assemble twice; the first stored result wins.
    pub(crate) fn assembled(&self, key: u64, dfs: &Dfs) -> Result<Arc<AssembledFactors>> {
        let factors = {
            let entries = self.entries.lock();
            let e = entries.get(&key).ok_or_else(|| {
                CoreError::Invariant("factor cache entry vanished mid-request".to_string())
            })?;
            if let Some(a) = &e.assembled {
                return Ok(a.clone());
            }
            e.factors.clone()
        };
        let mut io = UncountedIo { dfs };
        let l = factors.assemble_l(&mut io)?;
        let u = factors.assemble_u(&mut io)?;
        let assembled = Arc::new(AssembledFactors {
            l,
            u,
            perm: factors.perm(),
        });
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(&key) {
            match &e.assembled {
                Some(existing) => return Ok(existing.clone()),
                None => e.assembled = Some(assembled.clone()),
            }
        }
        Ok(assembled)
    }

    /// Primes (or upgrades) the entry for `key` after a cold run. An
    /// existing entry keeps whatever the new run did not produce: an
    /// invert run adds the inverse to an entry primed by `lu`, and vice
    /// versa.
    pub(crate) fn insert(
        &self,
        key: u64,
        nb: usize,
        factors: FactorRef,
        inverse: Option<Matrix>,
        assembled: Option<Arc<AssembledFactors>>,
        workdir: String,
    ) {
        let mut entries = self.entries.lock();
        match entries.get_mut(&key) {
            Some(e) => {
                if inverse.is_some() {
                    e.inverse = inverse;
                }
                if assembled.is_some() {
                    e.assembled = assembled;
                }
                e.factors = factors;
                e.workdir = workdir;
            }
            None => {
                entries.insert(
                    key,
                    Entry {
                        nb,
                        factors,
                        inverse,
                        assembled,
                        workdir,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_matrix::io::encode_binary;
    use mrinv_matrix::random::{random_unit_lower, random_upper};

    fn leaf_entry(dfs: &Dfs, n: usize, seed: u64) -> FactorRef {
        let l = random_unit_lower(n, seed);
        let u = random_upper(n, seed + 1);
        dfs.write(&format!("cache-test/{seed}/l"), encode_binary(&l));
        dfs.write(&format!("cache-test/{seed}/u"), encode_binary(&u));
        FactorRef::Leaf {
            n,
            l_path: format!("cache-test/{seed}/l"),
            u_path: format!("cache-test/{seed}/u"),
            perm: Permutation::identity(n),
            transposed_u: false,
        }
    }

    #[test]
    fn lookup_hits_validates_and_invalidates() {
        let dfs = Dfs::default();
        let cache = FactorCache::new();
        let f = leaf_entry(&dfs, 6, 1);
        cache.insert(7, 2, f.clone(), None, None, "run-a".to_string());

        assert!(cache.lookup(8, false, &dfs).is_none(), "unknown key");
        let view = cache.lookup(7, false, &dfs).expect("hit");
        assert_eq!(view.nb, 2);
        assert_eq!(view.workdir, "run-a");
        assert!(view.inverse.is_none());
        // Factors but no inverse: an invert request misses.
        assert!(cache.lookup(7, true, &dfs).is_none());

        // Deleting any factor file invalidates the entry on next lookup.
        assert!(dfs.delete("cache-test/1/u"));
        assert!(cache.lookup(7, false, &dfs).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn assembly_is_memoized_and_uncounted() {
        let dfs = Dfs::default();
        let cache = FactorCache::new();
        let f = leaf_entry(&dfs, 5, 9);
        cache.insert(1, 5, f.clone(), None, None, "w".to_string());
        let before = dfs.counters();
        let a1 = cache.assembled(1, &dfs).unwrap();
        let a2 = cache.assembled(1, &dfs).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "memoized");
        assert_eq!(dfs.counters(), before, "assembly reads are uncounted");
        assert_eq!(a1.perm, f.perm());
        assert!(cache.assembled(2, &dfs).is_err(), "unknown key");
    }

    #[test]
    fn insert_upgrades_in_place() {
        let dfs = Dfs::default();
        let cache = FactorCache::new();
        let f = leaf_entry(&dfs, 4, 20);
        cache.insert(3, 4, f.clone(), None, None, "w1".to_string());
        let inv = Matrix::identity(4);
        cache.insert(3, 4, f, Some(inv), None, "w2".to_string());
        let view = cache.lookup(3, true, &dfs).expect("inverse now present");
        assert!(view.inverse.is_some());
        assert_eq!(view.workdir, "w2");
        assert_eq!(cache.stats().entries, 1);
    }
}
