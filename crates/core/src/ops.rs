//! General distributed matrix operations over the MapReduce framework.
//!
//! The paper positions matrix inversion inside a family of MapReduce
//! matrix operations (SystemML provides "matrix multiplication, division,
//! and transpose, but not matrix inversion", Section 3). This module
//! supplies the neighbours inversion composes with in a Hadoop workflow:
//!
//! * [`matmul_mr`] — block-wrap distributed multiplication (the Section
//!   6.2 partitioning as a standalone job: each of `f1 × f2` tasks reads
//!   one row block of `A` and one column block of `B`);
//! * [`transpose_mr`] — distributed transpose (each task re-blocks its
//!   row stripe);
//! * [`scale_add_mr`] — element-wise `alpha·A + beta·B`.
//!
//! All three return the assembled result and sequence their job through
//! the caller's [`PipelineDriver`].

use mrinv_mapreduce::job::{JobSpec, MapContext, Mapper};
use mrinv_mapreduce::runner::run_map_only;
use mrinv_mapreduce::{Cluster, MrError, PipelineDriver, TaskRegistry};
use mrinv_matrix::block::even_ranges;
use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::kernel::{gemm, notrans, trans};
use mrinv_matrix::Matrix;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::source::{BlockIo, MasterIo};

/// Registers this module's remote task families (see
/// [`crate::remote::exec_registry`]).
pub(crate) fn register(r: &mut TaskRegistry) {
    r.register_map_only::<MatmulMapper>("matmul");
    r.register_map_only::<TransposeMapper>("transpose");
    r.register_map_only::<ScaleAddMapper>("scale-add");
}

fn stage_row_blocks(
    io: &mut MasterIo<'_>,
    m: &Matrix,
    dir: &str,
    parts: usize,
) -> Vec<(usize, usize)> {
    let ranges = even_ranges(m.rows(), parts);
    for (k, &(r0, r1)) in ranges.iter().enumerate() {
        if r0 < r1 {
            let stripe = m.row_stripe(r0, r1).expect("in range");
            io.write_bytes(&format!("{dir}/R.{k}"), encode_binary(&stripe));
        }
    }
    ranges
}

/// Workdir counter shared with [`crate::inverse`]'s jobs.
fn opdir(cluster: &Cluster, op: &str) -> String {
    format!("mrops/{op}-{}", cluster.dfs.file_count())
}

#[derive(Serialize, Deserialize)]
struct MatmulMapper {
    dir: String,
    row_ranges: Vec<(usize, usize)>,
    col_ranges: Vec<(usize, usize)>,
}

impl Mapper for MatmulMapper {
    type Input = usize; // cell id = i * f2 + j
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &usize,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        let f2 = self.col_ranges.len();
        let (i, j) = (input / f2, input % f2);
        let (r0, r1) = self.row_ranges[i];
        let (c0, c1) = self.col_ranges[j];
        if r0 >= r1 || c0 >= c1 {
            return Ok(());
        }
        // Block wrap (Section 6.2): this task reads one row block of A and
        // one column block of B (staged transposed, Section 6.3).
        let a_rows =
            decode_binary(&ctx.read(&format!("{}/A/R.{i}", self.dir))?).map_err(CoreError::from)?;
        let bt_rows = decode_binary(&ctx.read(&format!("{}/BT/R.{j}", self.dir))?)
            .map_err(CoreError::from)?;
        let kernel = std::time::Instant::now();
        let mut block = Matrix::zeros(a_rows.rows(), bt_rows.rows());
        gemm(1.0, notrans(&a_rows), trans(&bt_rows), 0.0, &mut block).map_err(CoreError::from)?;
        ctx.charge_kernel(kernel.elapsed());
        ctx.write(
            &format!("{}/OUT/C.{input}", self.dir),
            encode_binary(&block),
        );
        Ok(())
    }
}

/// Distributed `A·B` with the block-wrap layout on one map-only job.
pub fn matmul_mr(driver: &mut PipelineDriver<'_>, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let cluster = driver.cluster();
    if a.cols() != b.rows() {
        return Err(CoreError::Invariant(format!(
            "matmul shapes {:?} x {:?} do not chain",
            a.shape(),
            b.shape()
        )));
    }
    let dir = opdir(cluster, "matmul");
    let (f1, f2) = cluster.config.block_wrap_factors();
    let mut io = MasterIo::new(&cluster.dfs);
    let row_ranges = stage_row_blocks(&mut io, a, &format!("{dir}/A"), f1);
    let b_t = b.transpose();
    let col_ranges = stage_row_blocks(&mut io, &b_t, &format!("{dir}/BT"), f2);
    crate::lu_mr::charge_master_io(cluster, &io);

    let inputs: Vec<usize> = (0..f1 * f2).collect();
    let mapper = MatmulMapper {
        dir: dir.clone(),
        row_ranges: row_ranges.clone(),
        col_ranges: col_ranges.clone(),
    };
    let spec: JobSpec<usize, usize> = JobSpec::new(format!("matmul:{dir}"))
        .shuffle_sized()
        .remote("matmul");
    driver.step(spec.fingerprint(), |c| {
        run_map_only(c, &spec, &mapper, &inputs)
    })?;

    // Assemble (uncharged API convenience; blocks stay in the DFS).
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for (i, &(r0, r1)) in row_ranges.iter().enumerate() {
        for (j, &(c0, c1)) in col_ranges.iter().enumerate() {
            if r0 >= r1 || c0 >= c1 {
                continue;
            }
            let cell = i * col_ranges.len() + j;
            let block = decode_binary(&cluster.dfs.read(&format!("{dir}/OUT/C.{cell}"))?)?;
            out.set_block(r0, c0, &block)?;
        }
    }
    Ok(out)
}

#[derive(Serialize, Deserialize)]
struct TransposeMapper {
    dir: String,
    row_ranges: Vec<(usize, usize)>,
}

impl Mapper for TransposeMapper {
    type Input = usize;
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &usize,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        let (r0, r1) = self.row_ranges[*input];
        if r0 >= r1 {
            return Ok(());
        }
        let stripe = decode_binary(&ctx.read(&format!("{}/A/R.{input}", self.dir))?)
            .map_err(CoreError::from)?;
        ctx.write(
            &format!("{}/OUT/C.{input}", self.dir),
            encode_binary(&stripe.transpose()),
        );
        Ok(())
    }
}

/// Distributed transpose: each task transposes its row stripe, producing
/// the corresponding *column* stripe of `Aᵀ`.
pub fn transpose_mr(driver: &mut PipelineDriver<'_>, a: &Matrix) -> Result<Matrix> {
    let cluster = driver.cluster();
    let dir = opdir(cluster, "transpose");
    let m0 = cluster.nodes().max(1);
    let mut io = MasterIo::new(&cluster.dfs);
    let row_ranges = stage_row_blocks(&mut io, a, &format!("{dir}/A"), m0);
    crate::lu_mr::charge_master_io(cluster, &io);

    let inputs: Vec<usize> = (0..m0).collect();
    let mapper = TransposeMapper {
        dir: dir.clone(),
        row_ranges: row_ranges.clone(),
    };
    let spec: JobSpec<usize, usize> = JobSpec::new(format!("transpose:{dir}"))
        .shuffle_sized()
        .remote("transpose");
    driver.step(spec.fingerprint(), |c| {
        run_map_only(c, &spec, &mapper, &inputs)
    })?;

    let mut out = Matrix::zeros(a.cols(), a.rows());
    for (k, &(r0, r1)) in row_ranges.iter().enumerate() {
        if r0 >= r1 {
            continue;
        }
        let block = decode_binary(&cluster.dfs.read(&format!("{dir}/OUT/C.{k}"))?)?;
        out.set_block(0, r0, &block)?;
    }
    Ok(out)
}

#[derive(Serialize, Deserialize)]
struct ScaleAddMapper {
    dir: String,
    row_ranges: Vec<(usize, usize)>,
    alpha: f64,
    beta: f64,
}

impl Mapper for ScaleAddMapper {
    type Input = usize;
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &usize,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        let (r0, r1) = self.row_ranges[*input];
        if r0 >= r1 {
            return Ok(());
        }
        let a = decode_binary(&ctx.read(&format!("{}/A/R.{input}", self.dir))?)
            .map_err(CoreError::from)?;
        let b = decode_binary(&ctx.read(&format!("{}/B/R.{input}", self.dir))?)
            .map_err(CoreError::from)?;
        let mut out = Matrix::zeros(a.rows(), a.cols());
        for (dst, (x, y)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(a.as_slice().iter().zip(b.as_slice()))
        {
            *dst = self.alpha * x + self.beta * y;
        }
        ctx.write(&format!("{}/OUT/C.{input}", self.dir), encode_binary(&out));
        Ok(())
    }
}

/// Distributed element-wise `alpha·A + beta·B`.
pub fn scale_add_mr(
    driver: &mut PipelineDriver<'_>,
    a: &Matrix,
    b: &Matrix,
    alpha: f64,
    beta: f64,
) -> Result<Matrix> {
    let cluster = driver.cluster();
    if a.shape() != b.shape() {
        return Err(CoreError::Invariant(format!(
            "scale_add shapes differ: {:?} vs {:?}",
            a.shape(),
            b.shape()
        )));
    }
    let dir = opdir(cluster, "scale-add");
    let m0 = cluster.nodes().max(1);
    let mut io = MasterIo::new(&cluster.dfs);
    let row_ranges = stage_row_blocks(&mut io, a, &format!("{dir}/A"), m0);
    let _ = stage_row_blocks(&mut io, b, &format!("{dir}/B"), m0);
    crate::lu_mr::charge_master_io(cluster, &io);

    let inputs: Vec<usize> = (0..m0).collect();
    let mapper = ScaleAddMapper {
        dir: dir.clone(),
        row_ranges: row_ranges.clone(),
        alpha,
        beta,
    };
    let spec: JobSpec<usize, usize> = JobSpec::new(format!("scale-add:{dir}"))
        .shuffle_sized()
        .remote("scale-add");
    driver.step(spec.fingerprint(), |c| {
        run_map_only(c, &spec, &mapper, &inputs)
    })?;

    let mut out = Matrix::zeros(a.rows(), a.cols());
    for (k, &(r0, r1)) in row_ranges.iter().enumerate() {
        if r0 >= r1 {
            continue;
        }
        let block = decode_binary(&cluster.dfs.read(&format!("{dir}/OUT/C.{k}"))?)?;
        out.set_block(r0, 0, &block)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_mapreduce::{ClusterConfig, CostModel, RunId};
    use mrinv_matrix::kernel;
    use mrinv_matrix::random::random_matrix;

    fn cluster(m0: usize) -> Cluster {
        let mut cfg = ClusterConfig::medium(m0);
        cfg.cost = CostModel::unit_for_tests();
        Cluster::new(cfg)
    }

    fn driver(c: &Cluster) -> PipelineDriver<'_> {
        PipelineDriver::new(c, RunId::new("mrops"))
    }

    #[test]
    fn matmul_matches_local_kernel() {
        for &(m, k, n, m0) in &[
            (24usize, 30usize, 18usize, 4usize),
            (16, 16, 16, 1),
            (33, 7, 21, 6),
        ] {
            let c = cluster(m0);
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let mut d = driver(&c);
            let got = matmul_mr(&mut d, &a, &b).unwrap();
            let expect = kernel::mul(notrans(&a), notrans(&b)).unwrap();
            assert!(got.approx_eq(&expect, 1e-10), "m={m} k={k} n={n} m0={m0}");
            assert_eq!(d.num_jobs(), 1);
        }
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let c = cluster(2);
        let mut d = driver(&c);
        assert!(matmul_mr(&mut d, &Matrix::zeros(2, 3), &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let c = cluster(4);
        let a = random_matrix(19, 31, 3);
        let mut d = driver(&c);
        let t = transpose_mr(&mut d, &a).unwrap();
        assert_eq!(t, a.transpose());
        let back = transpose_mr(&mut d, &t).unwrap();
        assert_eq!(back, a);
        assert_eq!(d.num_jobs(), 2);
    }

    #[test]
    fn scale_add_matches_local() {
        let c = cluster(3);
        let a = random_matrix(14, 9, 4);
        let b = random_matrix(14, 9, 5);
        let mut d = driver(&c);
        let got = scale_add_mr(&mut d, &a, &b, 2.0, -0.5).unwrap();
        for i in 0..14 {
            for j in 0..9 {
                let expect = 2.0 * a[(i, j)] - 0.5 * b[(i, j)];
                assert!((got[(i, j)] - expect).abs() < 1e-12);
            }
        }
        assert!(scale_add_mr(&mut d, &a, &Matrix::zeros(2, 2), 1.0, 1.0).is_err());
    }

    #[test]
    fn ops_account_io_and_time() {
        let c = cluster(4);
        let a = random_matrix(32, 32, 6);
        let b = random_matrix(32, 32, 7);
        let before = c.metrics.snapshot();
        let mut d = driver(&c);
        let _ = matmul_mr(&mut d, &a, &b).unwrap();
        let after = c.metrics.snapshot();
        assert_eq!(after.jobs - before.jobs, 1);
        assert!(after.sim_secs > before.sim_secs);
        assert!(d.total_stats().read_bytes > 0);
    }

    #[test]
    fn matmul_block_wrap_reads_are_bounded() {
        // Each task reads one row block + one column block: total read
        // ~ (f1 + f2) * n^2 elements, far below m0 * n^2 (Section 6.2).
        let m0 = 16;
        let c = cluster(m0);
        let n = 64;
        let a = random_matrix(n, n, 8);
        let b = random_matrix(n, n, 9);
        c.dfs.reset_counters();
        let mut d = driver(&c);
        let _ = matmul_mr(&mut d, &a, &b).unwrap();
        let (f1, f2) = c.config.block_wrap_factors();
        let read_elements = d.total_stats().read_bytes as f64 / 8.0;
        let bound = ((f1 + f2) as f64 + 1.0) * (n * n) as f64;
        assert!(
            read_elements <= bound,
            "block wrap bound violated: {read_elements} > {bound}"
        );
    }
}
