//! The map-only partitioning job (Algorithm 3, Figures 3 and 4).
//!
//! One MapReduce job recursively partitions the input matrix into the full
//! Figure-4 directory tree before any LU work starts. Structural
//! properties preserved from the paper:
//!
//! * each partition mapper reads an equal range of *consecutive rows* of
//!   the input, for sequential I/O (Section 5.2);
//! * every written file has exactly one writer, and every pipeline reader
//!   reads only the files of its own stripe/cell — "synchronization on
//!   file writes is never required" (Section 5.2). Files are named
//!   `<dir>/<quad>/A.<reader-cell>.<writer-mapper>`;
//! * `A2` is split into column stripes (one per `U2` mapper) × writer row
//!   pieces, `A3` into row stripes (one per `L2'` mapper) × writer pieces,
//!   `A4` into the `f1 × f2` block-wrap grid (Section 6.2) × writer
//!   pieces, and `A1` recurses.
//!
//! The master rebuilds the same geometry as [`MatrixSource`] descriptors
//! (pure metadata — the mapper and the master share one enumeration
//! function, so they cannot disagree).

use mrinv_mapreduce::job::{JobSpec, MapContext, Mapper};
use mrinv_mapreduce::runner::{run_map_only, JobReport};
use mrinv_mapreduce::{Cluster, MrError, PipelineDriver, TaskRegistry};
use mrinv_matrix::block::{even_ranges, BlockRange};
use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::config::InversionConfig;
use crate::error::{CoreError, Result};
use crate::source::{BlockIo, MasterIo, MatrixSource, Piece};

/// Static geometry of one inversion's data layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Matrix order.
    pub n: usize,
    /// Bound value: blocks of order at most `nb` become leaves.
    pub nb: usize,
    /// Cluster size `m0` (= number of partition mappers).
    pub m0: usize,
    /// Number of `L2'` row stripes per level (`max(m0/2, 1)`).
    pub m_l: usize,
    /// Number of `U2` column stripes per level (`max(m0/2, 1)`).
    pub m_u: usize,
    /// `A4` reader cells: the `f1 × f2` block-wrap grid, or `(m0, 1)` row
    /// stripes when block wrap is disabled.
    pub grid: (usize, usize),
    /// DFS directory all paths live under (the paper's `Root`).
    pub root: String,
}

impl PartitionPlan {
    /// Builds the plan for a cluster and configuration.
    pub fn new(
        n: usize,
        cluster: &Cluster,
        cfg: &InversionConfig,
        root: impl Into<String>,
    ) -> Self {
        let m0 = cluster.nodes().max(1);
        let half_workers = (m0 / 2).max(1);
        let grid = if cfg.opts.block_wrap {
            cluster.config.block_wrap_factors()
        } else {
            (m0, 1)
        };
        PartitionPlan {
            n,
            nb: cfg.nb,
            m0,
            m_l: half_workers,
            m_u: half_workers,
            grid,
            root: root.into(),
        }
    }

    /// The consecutive global row range partition mapper `j` owns.
    pub fn mapper_rows(&self, j: usize) -> (usize, usize) {
        even_ranges(self.n, self.m0)[j]
    }

    /// DFS path of the input row-stripe file mapper `j` reads.
    pub fn input_part_path(&self, j: usize) -> String {
        format!("{}/input/part.{j}", self.root)
    }
}

/// A planned file: its path, global rectangle, and writer mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedPiece {
    writer: usize,
    path: String,
    rows: (usize, usize),
    cols: (usize, usize),
}

/// The recursive layout of one block, mirroring Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceTree {
    /// Block of order ≤ `nb`, decomposed on the master node.
    Leaf {
        /// DFS directory of this block.
        dir: String,
        /// Block order.
        n: usize,
        /// The stored block (local coordinates).
        source: MatrixSource,
    },
    /// Internal node: `A1` recurses; `A2`/`A3`/`A4` feed the level's job.
    Split {
        /// DFS directory of this block.
        dir: String,
        /// Block order.
        n: usize,
        /// Split point (`A1` has order `half`).
        half: usize,
        /// Recursive layout of the top-left block.
        a1: Box<SourceTree>,
        /// Top-right block, split for the `U2` mappers.
        a2: MatrixSource,
        /// Bottom-left block, split for the `L2'` mappers.
        a3: MatrixSource,
        /// Bottom-right block, split for the block-wrap reducers.
        a4: MatrixSource,
    },
}

impl SourceTree {
    /// Block order at this node.
    pub fn n(&self) -> usize {
        match self {
            SourceTree::Leaf { n, .. } | SourceTree::Split { n, .. } => *n,
        }
    }

    /// DFS directory of this node.
    pub fn dir(&self) -> &str {
        match self {
            SourceTree::Leaf { dir, .. } | SourceTree::Split { dir, .. } => dir,
        }
    }

    /// Total number of leaf blocks (master-node LU sites).
    pub fn leaf_count(&self) -> usize {
        match self {
            SourceTree::Leaf { .. } => 1,
            SourceTree::Split { a1, .. } => 1 + a1.leaf_count(), // B's tree is built later
        }
    }
}

/// Enumerates every planned piece of the recursive layout (shared by the
/// mapper and the master so the two views cannot diverge).
fn enumerate_pieces(plan: &PartitionPlan, out: &mut Vec<PlannedPiece>) {
    enumerate_block(plan, &plan.root.clone(), 0, 0, plan.n, out);
}

fn enumerate_block(
    plan: &PartitionPlan,
    dir: &str,
    r_off: usize,
    c_off: usize,
    n: usize,
    out: &mut Vec<PlannedPiece>,
) {
    if n == 0 {
        return;
    }
    if n <= plan.nb {
        // Leaf: single reader cell, row-sliced by writers.
        push_cells(plan, dir, r_off, c_off, n, n, &[(0, n)], &[(0, n)], out);
        return;
    }
    let half = n / 2;
    let rest = n - half;
    // A1 recurses.
    enumerate_block(plan, &format!("{dir}/A1"), r_off, c_off, half, out);
    // A2: column stripes for U2 mappers (rows 0..half, cols half..n).
    let a2_cols = even_ranges(rest, plan.m_u);
    push_cells(
        plan,
        &format!("{dir}/A2"),
        r_off,
        c_off + half,
        half,
        rest,
        &[(0, half)],
        &a2_cols,
        out,
    );
    // A3: row stripes for L2' mappers (rows half..n, cols 0..half).
    let a3_rows = even_ranges(rest, plan.m_l);
    push_cells(
        plan,
        &format!("{dir}/A3"),
        r_off + half,
        c_off,
        rest,
        half,
        &a3_rows,
        &[(0, half)],
        out,
    );
    // A4: grid cells for the reducers (rows half..n, cols half..n).
    let a4_rows = even_ranges(rest, plan.grid.0);
    let a4_cols = even_ranges(rest, plan.grid.1);
    push_cells(
        plan,
        &format!("{dir}/A4"),
        r_off + half,
        c_off + half,
        rest,
        rest,
        &a4_rows,
        &a4_cols,
        out,
    );
}

/// Emits the (reader-cell × writer) pieces of one quadrant whose local
/// origin sits at global `(r_off, c_off)` with shape `(nr, nc)`.
#[allow(clippy::too_many_arguments)]
fn push_cells(
    plan: &PartitionPlan,
    dir: &str,
    r_off: usize,
    c_off: usize,
    _nr: usize,
    _nc: usize,
    cell_rows: &[(usize, usize)],
    cell_cols: &[(usize, usize)],
    out: &mut Vec<PlannedPiece>,
) {
    for (ci, &(cr0, cr1)) in cell_rows.iter().enumerate() {
        for (cj, &(cc0, cc1)) in cell_cols.iter().enumerate() {
            if cr0 == cr1 || cc0 == cc1 {
                continue;
            }
            let cell = ci * cell_cols.len() + cj;
            // Global rows of this cell.
            let g0 = r_off + cr0;
            let g1 = r_off + cr1;
            for j in 0..plan.m0 {
                let (m0r, m1r) = plan.mapper_rows(j);
                let ir0 = g0.max(m0r);
                let ir1 = g1.min(m1r);
                if ir0 >= ir1 {
                    continue;
                }
                out.push(PlannedPiece {
                    writer: j,
                    path: format!("{dir}/A.{cell}.{j}"),
                    rows: (ir0, ir1),
                    cols: (c_off + cc0, c_off + cc1),
                });
            }
        }
    }
}

/// Builds the master's [`SourceTree`] of [`MatrixSource`] descriptors for
/// the layout the partition job will write. All sources use coordinates
/// local to their own block.
pub fn build_source_tree(plan: &PartitionPlan) -> SourceTree {
    let mut pieces = Vec::new();
    enumerate_pieces(plan, &mut pieces);
    build_tree_node(plan, &plan.root.clone(), 0, 0, plan.n, &pieces)
}

fn collect_quadrant(
    pieces: &[PlannedPiece],
    dir_prefix: &str,
    r_off: usize,
    c_off: usize,
    shape: (usize, usize),
) -> MatrixSource {
    let prefix = format!("{dir_prefix}/A.");
    let local: Vec<Piece> = pieces
        .iter()
        .filter(|p| p.path.starts_with(&prefix))
        .map(|p| {
            Piece::new(
                p.path.clone(),
                (p.rows.0 - r_off, p.rows.1 - r_off),
                (p.cols.0 - c_off, p.cols.1 - c_off),
            )
        })
        .collect();
    MatrixSource::new(shape, local)
}

fn build_tree_node(
    plan: &PartitionPlan,
    dir: &str,
    r_off: usize,
    c_off: usize,
    n: usize,
    pieces: &[PlannedPiece],
) -> SourceTree {
    if n <= plan.nb {
        return SourceTree::Leaf {
            dir: dir.to_string(),
            n,
            source: collect_quadrant(pieces, dir, r_off, c_off, (n, n)),
        };
    }
    let half = n / 2;
    let rest = n - half;
    SourceTree::Split {
        dir: dir.to_string(),
        n,
        half,
        a1: Box::new(build_tree_node(
            plan,
            &format!("{dir}/A1"),
            r_off,
            c_off,
            half,
            pieces,
        )),
        a2: collect_quadrant(
            pieces,
            &format!("{dir}/A2"),
            r_off,
            c_off + half,
            (half, rest),
        ),
        a3: collect_quadrant(
            pieces,
            &format!("{dir}/A3"),
            r_off + half,
            c_off,
            (rest, half),
        ),
        a4: collect_quadrant(
            pieces,
            &format!("{dir}/A4"),
            r_off + half,
            c_off + half,
            (rest, rest),
        ),
    }
}

/// The partitioning mapper: worker `j` reads its consecutive input rows and
/// writes every planned piece it owns.
#[derive(Serialize, Deserialize)]
pub struct PartitionMapper {
    plan: PartitionPlan,
}

/// Registers this module's remote task family (see
/// [`crate::remote::exec_registry`]).
pub(crate) fn register(r: &mut TaskRegistry) {
    r.register_map_only::<PartitionMapper>("partition");
}

impl Mapper for PartitionMapper {
    type Input = usize;
    type Key = usize;
    type Value = usize;

    fn map(
        &self,
        input: &usize,
        ctx: &mut MapContext<usize, usize>,
    ) -> std::result::Result<(), MrError> {
        let j = *input;
        let (r0, _r1) = self.plan.mapper_rows(j);
        let stripe = decode_binary(&ctx.read(&self.plan.input_part_path(j))?)
            .map_err(|e| MrError::Other(e.to_string()))?;
        let mut pieces = Vec::new();
        enumerate_pieces(&self.plan, &mut pieces);
        for p in pieces.into_iter().filter(|p| p.writer == j) {
            let block = stripe
                .block(BlockRange::new((p.rows.0 - r0, p.rows.1 - r0), p.cols))
                .map_err(|e| MrError::Other(e.to_string()))?;
            ctx.write(&p.path, encode_binary(&block));
        }
        Ok(())
    }
}

/// Writes the input matrix into the DFS as `m0` row-stripe files (the
/// upstream job's output in the paper's workflow; its cost is not part of
/// the inversion's Tables 1–2 accounting, so callers typically reset the
/// DFS counters afterwards).
pub fn ingest_input(cluster: &Cluster, a: &Matrix, plan: &PartitionPlan) -> Result<()> {
    if a.rows() != plan.n || a.cols() != plan.n {
        return Err(CoreError::Invariant(format!(
            "input is {:?}, plan expects {n}x{n}",
            a.shape(),
            n = plan.n
        )));
    }
    let mut io = MasterIo::new(&cluster.dfs);
    for j in 0..plan.m0 {
        let (r0, r1) = plan.mapper_rows(j);
        let stripe = a.row_stripe(r0, r1)?;
        io.write_bytes(&plan.input_part_path(j), encode_binary(&stripe));
    }
    Ok(())
}

/// Runs the partitioning job through the driver and returns the layout
/// descriptor tree. On a resumed run the job is restored from the
/// checkpoint manifest when its outputs survive; the tree is rebuilt
/// either way (it is a pure function of the plan).
pub fn run_partition_job(
    driver: &mut PipelineDriver<'_>,
    plan: &PartitionPlan,
) -> Result<(SourceTree, JobReport)> {
    let spec: JobSpec<usize, usize> = JobSpec::new(format!("partition:{}", plan.root))
        .shuffle_sized()
        .remote("partition");
    let inputs: Vec<usize> = (0..plan.m0).collect();
    let mapper = PartitionMapper { plan: plan.clone() };
    let report = driver.step(spec.fingerprint(), |c| {
        run_map_only(c, &spec, &mapper, &inputs)
    })?;
    Ok((build_source_tree(plan), report))
}

/// Reads the whole partitioned input back (test/diagnostic helper).
pub fn read_back(tree: &SourceTree, io: &mut MasterIo<'_>) -> Result<Matrix> {
    match tree {
        SourceTree::Leaf { source, .. } => source.read_all(io),
        SourceTree::Split {
            n,
            half,
            a1,
            a2,
            a3,
            a4,
            ..
        } => {
            let mut m = Matrix::zeros(*n, *n);
            m.set_block(0, 0, &read_back(a1, io)?)?;
            m.set_block(0, *half, &a2.read_all(io)?)?;
            m.set_block(*half, 0, &a3.read_all(io)?)?;
            m.set_block(*half, *half, &a4.read_all(io)?)?;
            Ok(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrinv_mapreduce::RunId;
    use mrinv_matrix::random::random_matrix;

    fn plan(n: usize, nb: usize, m0: usize, block_wrap: bool) -> (Cluster, PartitionPlan) {
        let mut cfg = mrinv_mapreduce::ClusterConfig::medium(m0);
        cfg.cost = mrinv_mapreduce::CostModel::unit_for_tests();
        let cluster = Cluster::new(cfg);
        let mut icfg = InversionConfig::with_nb(nb);
        icfg.opts.block_wrap = block_wrap;
        let p = PartitionPlan::new(n, &cluster, &icfg, "Root");
        (cluster, p)
    }

    #[test]
    fn partition_round_trips_the_matrix() {
        for &(n, nb, m0) in &[
            (24usize, 6usize, 4usize),
            (31, 7, 3),
            (16, 16, 2),
            (40, 5, 8),
        ] {
            let (cluster, p) = plan(n, nb, m0, true);
            let a = random_matrix(n, n, n as u64);
            ingest_input(&cluster, &a, &p).unwrap();
            let mut driver = PipelineDriver::new(&cluster, RunId::new("Root"));
            let (tree, report) = run_partition_job(&mut driver, &p).unwrap();
            assert_eq!(report.map_tasks, m0);
            let mut io = MasterIo::new(&cluster.dfs);
            let back = read_back(&tree, &mut io).unwrap();
            assert_eq!(back, a, "n={n} nb={nb} m0={m0}");
        }
    }

    #[test]
    fn every_file_has_one_writer() {
        let (_c, p) = plan(32, 8, 4, true);
        let mut pieces = Vec::new();
        enumerate_pieces(&p, &mut pieces);
        let mut seen = std::collections::HashMap::new();
        for piece in &pieces {
            if let Some(prev) = seen.insert(piece.path.clone(), piece.writer) {
                assert_eq!(prev, piece.writer, "file {} has two writers", piece.path);
            }
        }
        // And paths are unique outright.
        let paths: std::collections::HashSet<_> = pieces.iter().map(|p| &p.path).collect();
        assert_eq!(paths.len(), pieces.len());
    }

    #[test]
    fn pieces_tile_the_matrix_exactly() {
        let (_c, p) = plan(30, 7, 5, true);
        let mut pieces = Vec::new();
        enumerate_pieces(&p, &mut pieces);
        let mut cover = vec![0u8; 30 * 30];
        for piece in &pieces {
            for r in piece.rows.0..piece.rows.1 {
                for c in piece.cols.0..piece.cols.1 {
                    cover[r * 30 + c] += 1;
                }
            }
        }
        assert!(
            cover.iter().all(|&v| v == 1),
            "every element in exactly one piece"
        );
    }

    #[test]
    fn writers_only_touch_their_rows() {
        let (_c, p) = plan(40, 10, 4, true);
        let mut pieces = Vec::new();
        enumerate_pieces(&p, &mut pieces);
        for piece in &pieces {
            let (r0, r1) = p.mapper_rows(piece.writer);
            assert!(piece.rows.0 >= r0 && piece.rows.1 <= r1);
        }
    }

    #[test]
    fn tree_structure_matches_recursion() {
        let (_c, p) = plan(32, 8, 4, true);
        let tree = build_source_tree(&p);
        match &tree {
            SourceTree::Split {
                n,
                half,
                a1,
                a2,
                a3,
                a4,
                ..
            } => {
                assert_eq!(*n, 32);
                assert_eq!(*half, 16);
                assert_eq!(a2.shape(), (16, 16));
                assert_eq!(a3.shape(), (16, 16));
                assert_eq!(a4.shape(), (16, 16));
                match a1.as_ref() {
                    SourceTree::Split { n, a1: inner, .. } => {
                        assert_eq!(*n, 16);
                        assert!(matches!(inner.as_ref(), SourceTree::Leaf { n: 8, .. }));
                    }
                    other => panic!("expected split, got {other:?}"),
                }
            }
            other => panic!("expected split root, got {other:?}"),
        }
    }

    #[test]
    fn small_matrix_is_a_single_leaf() {
        let (cluster, p) = plan(8, 16, 4, true);
        let a = random_matrix(8, 8, 1);
        ingest_input(&cluster, &a, &p).unwrap();
        let mut driver = PipelineDriver::new(&cluster, RunId::new("Root"));
        let (tree, _) = run_partition_job(&mut driver, &p).unwrap();
        assert!(matches!(tree, SourceTree::Leaf { n: 8, .. }));
        let mut io = MasterIo::new(&cluster.dfs);
        assert_eq!(read_back(&tree, &mut io).unwrap(), a);
    }

    #[test]
    fn block_wrap_off_uses_row_stripes_for_a4() {
        let (_c, p) = plan(32, 8, 4, false);
        assert_eq!(p.grid, (4, 1));
        let (_c2, p2) = plan(32, 8, 4, true);
        assert_eq!(p2.grid, (2, 2));
    }

    #[test]
    fn u2_mapper_stripe_reads_only_its_columns() {
        // Reader-cell file split: a U2 mapper reading its column stripe of
        // A2 must not decode other stripes' files.
        let n = 32;
        let (cluster, p) = plan(n, 8, 4, true);
        let a = random_matrix(n, n, 9);
        ingest_input(&cluster, &a, &p).unwrap();
        let mut driver = PipelineDriver::new(&cluster, RunId::new("Root"));
        let (tree, _) = run_partition_job(&mut driver, &p).unwrap();
        let SourceTree::Split { a2, .. } = &tree else {
            panic!("expected split")
        };
        cluster.dfs.reset_counters();
        let mut io = MasterIo::new(&cluster.dfs);
        let stripe_cols = even_ranges(16, p.m_u)[0];
        let got = a2.read_cols(&mut io, stripe_cols.0, stripe_cols.1).unwrap();
        let expect = a
            .block(BlockRange::new((0, 16), (16, 16 + stripe_cols.1)))
            .unwrap();
        assert_eq!(got, expect);
        // Bytes read ≈ the stripe, not all of A2.
        let a2_bytes = 16 * 16 * 8;
        assert!(
            cluster.dfs.counters().bytes_read < (a2_bytes / 2 + 1024) as u64,
            "read {} bytes, expected about half of A2's {}",
            cluster.dfs.counters().bytes_read,
            a2_bytes
        );
    }

    #[test]
    fn ingest_validates_shape() {
        let (cluster, p) = plan(16, 4, 2, true);
        let wrong = random_matrix(8, 16, 0);
        assert!(ingest_input(&cluster, &wrong, &p).is_err());
    }

    #[test]
    fn mapper_rows_cover_input() {
        let (_c, p) = plan(33, 8, 5, true);
        let mut next = 0;
        for j in 0..5 {
            let (a, b) = p.mapper_rows(j);
            assert_eq!(a, next);
            next = b;
        }
        assert_eq!(next, 33);
    }
}
