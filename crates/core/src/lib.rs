//! **mrinv** — scalable matrix inversion using MapReduce.
//!
//! A from-scratch Rust reproduction of *"Scalable Matrix Inversion Using
//! MapReduce"* (Xiang, Meng, Aboulnaga — HPDC 2014): matrix inversion via
//! recursive **block LU decomposition** executed as a **pipeline of
//! MapReduce jobs** over an HDFS-like distributed file system.
//!
//! # Quick start
//!
//! ```
//! use mrinv::{InversionConfig, Request};
//! use mrinv_mapreduce::Cluster;
//! use mrinv_matrix::random::random_well_conditioned;
//! use mrinv_matrix::norms::inversion_residual;
//!
//! // A simulated 4-node cluster (EC2-medium cost profile).
//! let cluster = Cluster::medium(4);
//! let a = random_well_conditioned(64, 42);
//!
//! let out = Request::invert(&a)
//!     .config(&InversionConfig::with_nb(16))
//!     .submit(&cluster)
//!     .unwrap();
//! // The pipeline ran partition + 3 LU jobs + final inversion.
//! assert_eq!(out.report.jobs, mrinv::schedule::total_jobs(64, 16));
//! assert!(inversion_residual(&a, out.inverse().unwrap()).unwrap() < 1e-5);
//! ```
//!
//! # Architecture
//!
//! | Stage | Jobs | Module |
//! |---|---|---|
//! | Partition input (Algorithm 3) | 1 map-only | [`partition`] |
//! | Block LU (Algorithm 2, Eq. 6) | `2^⌈log2(n/nb)⌉ − 1` | [`lu_mr`] |
//! | Triangular inverses + product (Eq. 4) | 1 | [`tri_inv_mr`] |
//!
//! Every consumer enters through the [`Request`] builder in [`request`]
//! (inversion, LU decomposition, and linear solves behind one fluent
//! API), optionally backed by the keyed [`cache::FactorCache`] so a
//! repeated request for the same (matrix, configuration) serves from the
//! already-computed factor forest with zero pipeline jobs. The
//! [`service`] module projects the same API over TCP as the
//! multi-tenant `mrinv-serve` daemon, with [`client`] as its blocking
//! counterpart.
//!
//! Supporting pieces: [`schedule`] (the precomputed pipeline shape),
//! [`audit`] (the cost-model audit: predicted-vs-priced task residuals),
//! [`obs`] (the exportable metrics snapshot, registry + kernel perf),
//! [`source`] (descriptor-based submatrix storage, Section 5.2),
//! [`factors`] (the separate-files factor forest, Section 6.1),
//! [`theory`] (the closed forms of Tables 1–2), [`inmem`] (the same
//! algorithm without MapReduce, for verification and as the Section 8
//! "Spark-style" dataflow), and [`config`] (the Section 6 optimization
//! toggles). Beyond the paper: [`ops`] (distributed multiply, transpose,
//! and element-wise combine — the SystemML-style neighbours inversion
//! composes with) and [`solve`] (determinants, condition estimates, and
//! Newton–Schulz-refined inverses on top of the distributed factors).

#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod cli;
pub mod client;
pub mod config;
pub mod error;
pub mod factors;
pub mod inmem;
pub mod inverse;
pub mod lu_mr;
pub mod obs;
pub mod ops;
pub mod partition;
pub mod remote;
pub mod report;
pub mod request;
pub mod schedule;
pub mod service;
pub mod solve;
pub mod source;
pub mod theory;
pub mod tri_inv_mr;

pub use cache::{cache_key, CacheStats, FactorCache};
pub use config::{InversionConfig, Optimizations};
pub use error::{CoreError, Result};
pub use inverse::{run_fingerprint, Checkpoint};
pub use mrinv_mapreduce::{PipelineDriver, RunId};
pub use remote::exec_registry;
pub use report::RunReport;
pub use request::{CacheStatus, LuFactors, Op, Outcome, Request};
