//! Blocking client for the [`crate::service`] daemon.
//!
//! One [`ServiceClient`] owns one TCP connection and issues one request
//! at a time (the protocol is strict request/response per connection);
//! open several clients for concurrency. Matrices cross the wire through
//! the binary codec, so results are bit-identical to running the same
//! [`crate::Request`] in-process.

use std::net::TcpStream;

use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::{Matrix, Permutation};

use crate::config::InversionConfig;
use crate::error::{CoreError, Result};
use crate::request::LuFactors;
use crate::service::{
    read_frame, write_frame, WireOp, WireRequest, WireResponse, TAG_REQUEST, TAG_RESPONSE,
};

/// What the server sent back for one request.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// The inverse, for invert requests.
    pub inverse: Option<Matrix>,
    /// Assembled factors, for lu requests.
    pub factors: Option<LuFactors>,
    /// Solutions, one per submitted right-hand side.
    pub solutions: Vec<Vec<f64>>,
    /// Whether the server's factor cache served the request.
    pub cache_hit: bool,
    /// Pipeline jobs the request ran server-side (0 on a cache hit).
    pub jobs: u64,
    /// Simulated seconds the request cost server-side.
    pub sim_secs: f64,
}

/// A blocking connection to an `mrinv-serve` instance.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    tenant: String,
    next_id: u64,
}

impl ServiceClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7171"`), identifying every
    /// request as `tenant`.
    pub fn connect(addr: &str, tenant: impl Into<String>) -> Result<ServiceClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::Invariant(format!("cannot connect to {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(ServiceClient {
            stream,
            tenant: tenant.into(),
            next_id: 0,
        })
    }

    /// Requests the inverse of `a`.
    pub fn invert(&mut self, a: &Matrix, cfg: &InversionConfig) -> Result<ServiceReply> {
        self.roundtrip(WireOp::Invert, a, &[], cfg)
    }

    /// Requests the LU factorization of `a`.
    pub fn lu(&mut self, a: &Matrix, cfg: &InversionConfig) -> Result<ServiceReply> {
        self.roundtrip(WireOp::Lu, a, &[], cfg)
    }

    /// Requests solutions of `A·x = b` for every right-hand side.
    pub fn solve(
        &mut self,
        a: &Matrix,
        rhs: &[Vec<f64>],
        cfg: &InversionConfig,
    ) -> Result<ServiceReply> {
        self.roundtrip(WireOp::Solve, a, rhs, cfg)
    }

    fn roundtrip(
        &mut self,
        op: WireOp,
        a: &Matrix,
        rhs: &[Vec<f64>],
        cfg: &InversionConfig,
    ) -> Result<ServiceReply> {
        self.next_id += 1;
        let id = self.next_id;
        let req = WireRequest {
            tenant: self.tenant.clone(),
            id,
            op,
            a: encode_binary(a).to_vec(),
            rhs: rhs.to_vec(),
            nb: cfg.nb as u64,
            separate_intermediate_files: cfg.opts.separate_intermediate_files,
            block_wrap: cfg.opts.block_wrap,
            transpose_u: cfg.opts.transpose_u,
        };
        let net = |what: &str, e: &dyn std::fmt::Display| {
            CoreError::Invariant(format!("service connection {what}: {e}"))
        };
        write_frame(&mut self.stream, TAG_REQUEST, &bincode::serialize(&req))
            .map_err(|e| net("send", &e))?;
        let (tag, body) = read_frame(&mut self.stream).map_err(|e| net("recv", &e))?;
        if tag != TAG_RESPONSE {
            return Err(CoreError::Invariant(format!(
                "expected a response frame, got tag {tag}"
            )));
        }
        let resp = bincode::deserialize::<WireResponse>(&body)
            .map_err(|e| CoreError::Invariant(format!("undecodable response: {e}")))?;
        if resp.id != id {
            return Err(CoreError::Invariant(format!(
                "response id {} for request {id}",
                resp.id
            )));
        }
        if !resp.ok {
            return Err(CoreError::Invariant(format!(
                "server error: {}",
                resp.error
            )));
        }
        decode_reply(resp)
    }
}

fn decode_reply(resp: WireResponse) -> Result<ServiceReply> {
    let inverse = if resp.inverse.is_empty() {
        None
    } else {
        Some(decode_binary(&resp.inverse)?)
    };
    let factors = if resp.l.is_empty() {
        None
    } else {
        Some(LuFactors {
            l: decode_binary(&resp.l)?,
            u: decode_binary(&resp.u)?,
            perm: Permutation::from_vec(resp.perm.iter().map(|&s| s as usize).collect()),
        })
    };
    Ok(ServiceReply {
        inverse,
        factors,
        solutions: resp.solutions,
        cache_hit: resp.cache_hit,
        jobs: resp.jobs,
        sim_secs: resp.sim_secs,
    })
}
