//! `mrinv-serve`: the multi-tenant inversion service.
//!
//! A long-running daemon that accepts concurrent [`crate::Request`]-shaped
//! work over TCP — `invert(A)`, `lu(A)`, `solve(A, b…)` — from many
//! tenants against one shared [`Cluster`], backed by one shared
//! [`FactorCache`]. The wire protocol reuses the worker backend's frame
//! format (`u32` little-endian length, one tag byte, bincode body; see
//! [`crate::exec_registry`]'s TCP backend), with two tags:
//!
//! | dir | tag | frame      | body                     |
//! |-----|-----|------------|--------------------------|
//! | →   | 1   | `Request`  | bincode [`WireRequest`]  |
//! | ←   | 2   | `Response` | bincode [`WireResponse`] |
//!
//! # Threading model
//!
//! One accept thread, one handler thread per connection, and **one**
//! pipeline executor thread. Handler threads serve cache *hits*
//! themselves (hits touch no driver state and use uncounted DFS reads,
//! so any number can run concurrently); everything cold is queued for
//! the executor, which runs pipelines strictly one at a time. That
//! serialization is what keeps [`crate::RunReport`]s correct — the
//! cluster's metrics are delta-based, so two interleaved pipeline runs
//! would corrupt each other's accounting — and it is also the
//! determinism argument: each cold run sees the DFS exactly as a
//! sequential run would, so concurrent clients get bit-identical bytes
//! to back-to-back requests.
//!
//! # Admission control, fairness, batching
//!
//! Each tenant owns a bounded FIFO queue
//! ([`ServiceConfig::max_queue_per_tenant`]); a request arriving at a
//! full queue is rejected immediately rather than admitted and starved.
//! The executor drains queues tenant-round-robin, so one tenant
//! submitting a thousand requests cannot lock out another submitting
//! one. When the executor picks a `solve`, it also drains every other
//! queued `solve` with the same cache key (any tenant) and serves the
//! whole batch from a single factorization + substitution pass.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mrinv_mapreduce::obs::Labels;
use mrinv_mapreduce::Cluster;
use mrinv_matrix::io::{decode_binary, encode_binary};
use mrinv_matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::cache::{cache_key, CacheStats, FactorCache};
use crate::config::{InversionConfig, Optimizations};
use crate::error::{CoreError, Result};
use crate::request::{CacheStatus, Op, Outcome, Request};

pub(crate) const TAG_REQUEST: u8 = 1;
pub(crate) const TAG_RESPONSE: u8 = 2;

/// Writes one `len ∥ tag ∥ body` frame.
pub(crate) fn write_frame(stream: &mut TcpStream, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let len = (body.len() + 1) as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&[tag])?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one frame, returning `(tag, body)`.
pub(crate) fn read_frame(stream: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "zero-length frame",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let tag = body[0];
    body.drain(..1);
    Ok((tag, body))
}

/// The operation field of a [`WireRequest`] (unit variants only — the
/// vendored codec's enum support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireOp {
    /// Full inversion.
    Invert,
    /// LU factorization; the response carries `L`, `U`, and the pivots.
    Lu,
    /// Linear solve of the attached right-hand sides.
    Solve,
}

impl WireOp {
    fn op(self) -> Op {
        match self {
            WireOp::Invert => Op::Invert,
            WireOp::Lu => Op::Lu,
            WireOp::Solve => Op::Solve,
        }
    }
}

/// One request frame. Matrices ride as the binary codec's bytes
/// (bit-exact `f64`s), the configuration as its unpacked fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRequest {
    /// Tenant the request is accounted (and admission-controlled) under.
    pub tenant: String,
    /// Client-chosen request id, echoed back in the response.
    pub id: u64,
    /// Which computation to run.
    pub op: WireOp,
    /// The input matrix, encoded with the binary codec.
    pub a: Vec<u8>,
    /// Right-hand sides (required for `Solve`, optional otherwise).
    pub rhs: Vec<Vec<f64>>,
    /// Block bound `nb`.
    pub nb: u64,
    /// [`Optimizations::separate_intermediate_files`].
    pub separate_intermediate_files: bool,
    /// [`Optimizations::block_wrap`].
    pub block_wrap: bool,
    /// [`Optimizations::transpose_u`].
    pub transpose_u: bool,
}

impl WireRequest {
    fn config(&self) -> InversionConfig {
        let mut cfg = InversionConfig::with_nb(self.nb as usize);
        cfg.opts = Optimizations {
            separate_intermediate_files: self.separate_intermediate_files,
            block_wrap: self.block_wrap,
            transpose_u: self.transpose_u,
        };
        cfg
    }
}

/// One response frame. Empty byte vectors stand for absent matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireResponse {
    /// Echo of [`WireRequest::id`].
    pub id: u64,
    /// Whether the computation succeeded; on `false` only `error` is
    /// meaningful.
    pub ok: bool,
    /// Error rendering when `ok` is false.
    pub error: String,
    /// Whether the factor cache served this request.
    pub cache_hit: bool,
    /// The inverse (invert requests), binary-encoded; empty otherwise.
    pub inverse: Vec<u8>,
    /// `L` (lu requests), binary-encoded; empty otherwise.
    pub l: Vec<u8>,
    /// `U` (lu requests), binary-encoded; empty otherwise.
    pub u: Vec<u8>,
    /// Pivot sources (lu requests): entry `i` of `P·A` is row `perm[i]`
    /// of `A`. Empty otherwise.
    pub perm: Vec<u64>,
    /// Solutions, one per attached right-hand side.
    pub solutions: Vec<Vec<f64>>,
    /// Pipeline jobs this request ran (0 on a cache hit).
    pub jobs: u64,
    /// Simulated seconds this request cost (0.0 on a cache hit).
    pub sim_secs: f64,
}

impl WireResponse {
    fn err(id: u64, message: impl Into<String>) -> WireResponse {
        WireResponse {
            id,
            ok: false,
            error: message.into(),
            cache_hit: false,
            inverse: Vec::new(),
            l: Vec::new(),
            u: Vec::new(),
            perm: Vec::new(),
            solutions: Vec::new(),
            jobs: 0,
            sim_secs: 0.0,
        }
    }

    fn from_outcome(id: u64, out: &Outcome) -> WireResponse {
        let (l, u, perm) = match out.factors() {
            Some(f) => (
                encode_binary(&f.l).to_vec(),
                encode_binary(&f.u).to_vec(),
                f.perm.as_slice().iter().map(|&s| s as u64).collect(),
            ),
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        WireResponse {
            id,
            ok: true,
            error: String::new(),
            cache_hit: out.cache == CacheStatus::Hit,
            inverse: out
                .inverse()
                .map(|m| encode_binary(m).to_vec())
                .unwrap_or_default(),
            l,
            u,
            perm,
            solutions: out.solutions().to_vec(),
            jobs: out.report.jobs,
            sim_secs: out.report.sim_secs,
        }
    }
}

/// Tuning knobs for [`ServerHandle::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Admission-control bound: a tenant with this many queued cold
    /// requests has further cold requests rejected until the executor
    /// catches up. Cache hits are never rejected (they consume no
    /// executor capacity).
    pub max_queue_per_tenant: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            max_queue_per_tenant: 64,
        }
    }
}

/// A cold request parked for the executor.
struct QueuedJob {
    tenant: String,
    id: u64,
    op: Op,
    a: Matrix,
    rhs: Vec<Vec<f64>>,
    cfg: InversionConfig,
    key: u64,
    resp: mpsc::Sender<WireResponse>,
}

/// Per-tenant FIFO queues plus the round-robin draining order.
#[derive(Default)]
struct Queues {
    tenants: BTreeMap<String, VecDeque<QueuedJob>>,
    rr: VecDeque<String>,
}

impl Queues {
    fn push(&mut self, job: QueuedJob) {
        let tenant = job.tenant.clone();
        let q = self.tenants.entry(tenant.clone()).or_default();
        q.push_back(job);
        if !self.rr.contains(&tenant) {
            self.rr.push_back(tenant);
        }
    }

    /// Pops the next job in tenant-round-robin order.
    fn pop(&mut self) -> Option<QueuedJob> {
        while let Some(tenant) = self.rr.pop_front() {
            if let Some(q) = self.tenants.get_mut(&tenant) {
                if let Some(job) = q.pop_front() {
                    if !q.is_empty() {
                        self.rr.push_back(tenant);
                    }
                    return Some(job);
                }
            }
        }
        None
    }

    /// Drains every queued solve sharing `key` (any tenant) for batching.
    fn drain_matching_solves(&mut self, key: u64) -> Vec<QueuedJob> {
        let mut batch = Vec::new();
        for q in self.tenants.values_mut() {
            let mut keep = VecDeque::with_capacity(q.len());
            for job in q.drain(..) {
                if job.op == Op::Solve && job.key == key {
                    batch.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *q = keep;
        }
        batch
    }

    fn pending(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, VecDeque::len)
    }

    fn drain_all(&mut self) -> Vec<QueuedJob> {
        self.rr.clear();
        self.tenants
            .values_mut()
            .flat_map(|q| q.drain(..))
            .collect()
    }
}

struct Shared {
    cluster: Arc<Cluster>,
    cache: FactorCache,
    config: ServiceConfig,
    queues: Mutex<Queues>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Live client sockets, shut down (not just dropped) on server
    /// shutdown so blocked handler reads wake immediately.
    conns: Mutex<Vec<TcpStream>>,
    served: AtomicU64,
}

impl Shared {
    /// Bumps a service counter, labelled by tenant and operation.
    fn count(&self, name: &str, tenant: &str, op: &str) {
        let labels = Labels::new().tenant(tenant).task_kind(op);
        self.cluster.metrics.obs().counter(name, &labels).add(1);
    }

    /// Per-request accounting with the request-id label dimension.
    fn note_served(&self, tenant: &str, id: u64, op: Op, out: &Outcome) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let verdict = match out.cache {
            CacheStatus::Hit => "mrinv_service_cache_hits_total",
            CacheStatus::Miss => "mrinv_service_cache_misses_total",
            CacheStatus::Bypass => return,
        };
        self.count(verdict, tenant, op.name());
        let labels = Labels::new()
            .tenant(tenant)
            .request(id.to_string())
            .task_kind(op.name());
        let obs = self.cluster.metrics.obs();
        obs.gauge("mrinv_service_request_jobs", &labels)
            .set(out.report.jobs as f64);
        obs.gauge("mrinv_service_request_sim_secs", &labels)
            .set(out.report.sim_secs);
    }
}

/// A running service. Dropping the handle shuts the server down: the
/// listener stops accepting, every client socket is shut down, queued
/// jobs are failed with a shutdown error, and all threads are joined —
/// no orphan sockets or wedged accept loops survive the handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Binds, spawns the accept and executor threads, and returns.
    pub fn start(cluster: Arc<Cluster>, config: ServiceConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| CoreError::Invariant(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::Invariant(format!("listener address: {e}")))?;
        let shared = Arc::new(Shared {
            cluster,
            cache: FactorCache::new(),
            config,
            queues: Mutex::new(Queues::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            served: AtomicU64::new(0),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let executor = {
            let shared = shared.clone();
            std::thread::spawn(move || executor_loop(&shared))
        };
        let accept = {
            let shared = shared.clone();
            let handlers = handlers.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            executor: Some(executor),
            handlers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters of the shared factor cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Requests served to completion (success or error response sent).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stops the service and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Wake blocked handler reads.
        for conn in self.shared.conns.lock().expect("conns lock").iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Wake the executor so it drains and exits.
        self.shared.work.notify_all();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.executor.take() {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handlers lock"));
        for t in handlers {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client); close and exit.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        let shared = shared.clone();
        let handle = std::thread::spawn(move || {
            let mut stream = stream;
            // A panicking handler must not leak its socket: catch the
            // unwind and shut the stream down either way, so the client
            // sees EOF instead of a wedged connection, and the listener
            // (a different thread) is never affected.
            let result = catch_unwind(AssertUnwindSafe(|| handle_connection(&mut stream, &shared)));
            let _ = stream.shutdown(Shutdown::Both);
            drop(result);
        });
        handlers.lock().expect("handlers lock").push(handle);
    }
}

/// Serves one client connection: a loop of request frames, each answered
/// with exactly one response frame. Malformed frames drop the connection
/// (the protocol has no way to resynchronize a corrupt stream).
fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    loop {
        let (tag, body) = match read_frame(stream) {
            Ok(f) => f,
            Err(_) => return, // EOF, reset, or shutdown
        };
        if tag != TAG_REQUEST {
            return;
        }
        let req = match bincode::deserialize::<WireRequest>(&body) {
            Ok(r) => r,
            Err(_) => return,
        };
        let resp = serve_request(shared, req);
        let body = bincode::serialize(&resp);
        if write_frame(stream, TAG_RESPONSE, &body).is_err() {
            return;
        }
    }
}

/// Serves one decoded request: cache hits inline, cold work through the
/// executor queue.
fn serve_request(shared: &Arc<Shared>, req: WireRequest) -> WireResponse {
    let op = req.op.op();
    shared.count("mrinv_service_requests_total", &req.tenant, op.name());
    let a = match decode_binary(&req.a) {
        Ok(a) => a,
        Err(e) => return WireResponse::err(req.id, format!("bad matrix: {e}")),
    };
    let cfg = req.config();

    // Fast path: serve a cache hit right here, concurrently with
    // whatever the executor is doing (hits never touch driver state).
    let probe = build_request(&a, op, &req.rhs, &cfg).cache(&shared.cache);
    match probe.submit_cached_only(&shared.cluster) {
        Err(e) => return WireResponse::err(req.id, e.to_string()),
        Ok(Some(out)) => {
            shared.note_served(&req.tenant, req.id, op, &out);
            return WireResponse::from_outcome(req.id, &out);
        }
        Ok(None) => {}
    }

    // Cold: admission-check, queue for the executor, wait.
    let key = cache_key(&a, &cfg, &shared.cluster);
    let (tx, rx) = mpsc::channel();
    {
        let mut queues = shared.queues.lock().expect("queues lock");
        if shared.shutdown.load(Ordering::SeqCst) {
            return WireResponse::err(req.id, "server is shutting down");
        }
        if queues.pending(&req.tenant) >= shared.config.max_queue_per_tenant {
            shared.count("mrinv_service_rejected_total", &req.tenant, op.name());
            return WireResponse::err(
                req.id,
                format!(
                    "tenant {} has {} queued requests (admission limit)",
                    req.tenant, shared.config.max_queue_per_tenant
                ),
            );
        }
        queues.push(QueuedJob {
            tenant: req.tenant.clone(),
            id: req.id,
            op,
            a,
            rhs: req.rhs,
            cfg,
            key,
            resp: tx,
        });
    }
    shared.work.notify_one();
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => WireResponse::err(req.id, "server dropped the request (shutting down)"),
    }
}

fn build_request<'a>(
    a: &'a Matrix,
    op: Op,
    rhs: &[Vec<f64>],
    cfg: &InversionConfig,
) -> Request<'a> {
    let req = match op {
        Op::Invert => Request::invert(a),
        Op::Lu => Request::lu(a),
        Op::Solve => Request::solve(a),
    };
    req.rhs_all(rhs.iter().cloned()).config(cfg)
}

/// The single pipeline executor: pops jobs tenant-round-robin, batches
/// same-key solves, runs each cold pipeline alone, answers through the
/// jobs' channels.
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let (job, batch) = {
            let mut queues = shared.queues.lock().expect("queues lock");
            let job = loop {
                if let Some(job) = queues.pop() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queues = shared.work.wait(queues).expect("queues lock");
            };
            let batch = if job.op == Op::Solve {
                queues.drain_matching_solves(job.key)
            } else {
                Vec::new()
            };
            (job, batch)
        };
        execute_batch(shared, job, batch);
        if shared.shutdown.load(Ordering::SeqCst) {
            // Fail whatever is still queued rather than leaving handler
            // threads blocked on their channels.
            let orphans = {
                let mut queues = shared.queues.lock().expect("queues lock");
                queues.drain_all()
            };
            for job in orphans {
                let _ = job
                    .resp
                    .send(WireResponse::err(job.id, "server is shutting down"));
            }
            return;
        }
    }
}

/// Runs `job` (plus any batched same-key solves) through one pipeline /
/// substitution pass and answers every participant.
fn execute_batch(shared: &Arc<Shared>, job: QueuedJob, batch: Vec<QueuedJob>) {
    // Merge the batch's right-hand sides behind the leader's, remembering
    // each participant's slice.
    let mut rhs = job.rhs.clone();
    let mut spans = vec![(0usize, job.rhs.len())];
    for follower in &batch {
        spans.push((rhs.len(), follower.rhs.len()));
        rhs.extend(follower.rhs.iter().cloned());
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        build_request(&job.a, job.op, &rhs, &job.cfg)
            .cache(&shared.cache)
            .submit(&shared.cluster)
    }));
    let outcome = match outcome {
        Ok(result) => result,
        Err(_) => Err(CoreError::Invariant(
            "request panicked in the pipeline executor".to_string(),
        )),
    };

    match outcome {
        Ok(out) => {
            let participants: Vec<(&QueuedJob, (usize, usize))> = std::iter::once(&job)
                .chain(batch.iter())
                .zip(spans)
                .collect();
            for (member, (start, len)) in participants {
                let mut resp = WireResponse::from_outcome(member.id, &out);
                resp.solutions = out.solutions()[start..start + len].to_vec();
                shared.note_served(&member.tenant, member.id, member.op, &out);
                let _ = member.resp.send(resp);
            }
        }
        Err(e) => {
            let message = e.to_string();
            for member in std::iter::once(&job).chain(batch.iter()) {
                let _ = member
                    .resp
                    .send(WireResponse::err(member.id, message.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: &str, id: u64, op: Op, key: u64) -> (QueuedJob, mpsc::Receiver<WireResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            QueuedJob {
                tenant: tenant.to_string(),
                id,
                op,
                a: Matrix::identity(2),
                rhs: Vec::new(),
                cfg: InversionConfig::with_nb(1),
                key,
                resp: tx,
            },
            rx,
        )
    }

    #[test]
    fn queues_drain_round_robin_across_tenants() {
        let mut q = Queues::default();
        for i in 0..3 {
            q.push(job("alice", i, Op::Invert, 0).0);
        }
        q.push(job("bob", 10, Op::Invert, 0).0);
        let order: Vec<(String, u64)> = std::iter::from_fn(|| q.pop())
            .map(|j| (j.tenant, j.id))
            .collect();
        // Bob's single request is served second, not fourth.
        assert_eq!(
            order,
            vec![
                ("alice".to_string(), 0),
                ("bob".to_string(), 10),
                ("alice".to_string(), 1),
                ("alice".to_string(), 2),
            ]
        );
    }

    #[test]
    fn solve_batching_drains_same_key_only() {
        let mut q = Queues::default();
        q.push(job("a", 1, Op::Solve, 42).0);
        q.push(job("b", 2, Op::Solve, 42).0);
        q.push(job("b", 3, Op::Solve, 7).0);
        q.push(job("c", 4, Op::Invert, 42).0);
        let leader = q.pop().unwrap();
        assert_eq!(leader.id, 1);
        let batch = q.drain_matching_solves(42);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 2);
        // The different-key solve and the invert stay queued.
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(rest.len(), 2);
        assert!(rest.contains(&3) && rest.contains(&4));
    }

    #[test]
    fn wire_structs_round_trip() {
        let req = WireRequest {
            tenant: "t".to_string(),
            id: 9,
            op: WireOp::Solve,
            a: encode_binary(&Matrix::identity(3)).to_vec(),
            rhs: vec![vec![1.0, 2.0, 3.0]],
            nb: 2,
            separate_intermediate_files: true,
            block_wrap: false,
            transpose_u: true,
        };
        let back = bincode::deserialize::<WireRequest>(&bincode::serialize(&req)).unwrap();
        assert_eq!(back.tenant, "t");
        assert_eq!(back.op, WireOp::Solve);
        assert_eq!(back.rhs, req.rhs);
        assert_eq!(back.config().nb, 2);
        assert!(back.config().opts.separate_intermediate_files);
        assert!(!back.config().opts.block_wrap);

        let resp = WireResponse::err(9, "nope");
        let back = bincode::deserialize::<WireResponse>(&bincode::serialize(&resp)).unwrap();
        assert!(!back.ok);
        assert_eq!(back.id, 9);
        assert_eq!(back.error, "nope");
    }
}
