//! Property-based tests on the linear-algebra substrate.

use mrinv_matrix::block::{even_ranges, BlockRange};
use mrinv_matrix::io::{decode_binary, decode_text, encode_binary, encode_text};
use mrinv_matrix::kernel::{
    gemm_with, trsm_with, Blocked, Diag, GemmBackend, Naive, Op, Packed, Side, Strided, Uplo,
};
use mrinv_matrix::lu::lu_decompose;
use mrinv_matrix::norms::inversion_residual;
use mrinv_matrix::random::{random_matrix, random_well_conditioned};
use mrinv_matrix::triangular::{invert_lower, invert_upper};
use mrinv_matrix::{Matrix, Permutation};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| random_matrix(r, c, seed))
}

fn arb_perm(max_n: usize) -> impl Strategy<Value = Permutation> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s: Vec<usize> = (0..n).collect();
        s.shuffle(&mut rng);
        Permutation::from_vec(s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in arb_matrix(24)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn binary_codec_round_trips(m in arb_matrix(24)) {
        prop_assert_eq!(decode_binary(&encode_binary(&m)).unwrap(), m);
    }

    #[test]
    fn text_codec_round_trips(m in arb_matrix(12)) {
        prop_assert_eq!(decode_text(&encode_text(&m)).unwrap(), m);
    }

    #[test]
    fn gemm_backends_agree_differentially(
        (m, k, n, s1, s2, s3, ta, tb, alpha, beta) in (
            1usize..48, 1usize..48, 1usize..48,
            any::<u64>(), any::<u64>(), any::<u64>(),
            any::<bool>(), any::<bool>(),
            -2.0f64..2.0, -2.0f64..2.0,
        )
    ) {
        // Storage shape depends on the requested op; logical product is
        // always (m x k) · (k x n).
        let a = random_matrix(if ta { k } else { m }, if ta { m } else { k }, s1);
        let b = random_matrix(if tb { n } else { k }, if tb { k } else { n }, s2);
        let c0 = random_matrix(m, n, s3);
        let op = |t: bool| if t { Op::Trans } else { Op::NoTrans };

        let mut reference = c0.clone();
        gemm_with(&Naive, alpha, op(ta).of(&a), op(tb).of(&b), beta, &mut reference).unwrap();

        // Forward-error bound: each element is a length-k dot (error
        // ~ k·eps per unit of summed magnitude) plus the scaled original.
        // Entries are O(1), so the summed magnitude is O(|alpha|·k + |beta|).
        let tol = 32.0 * f64::EPSILON * (k as f64 + 2.0)
            * (alpha.abs() * k as f64 + beta.abs() + 1.0);

        let backends: [&dyn GemmBackend; 5] = [
            &Strided,
            &Blocked { tile: 5 },
            &Blocked { tile: 64 },
            &Packed { parallel: false },
            &Packed { parallel: true },
        ];
        for backend in backends {
            let mut c = c0.clone();
            gemm_with(backend, alpha, op(ta).of(&a), op(tb).of(&b), beta, &mut c).unwrap();
            for (got, want) in c.as_slice().iter().zip(reference.as_slice()) {
                prop_assert!(
                    (got - want).abs() <= tol,
                    "{} deviates from naive: {got} vs {want} (tol {tol}, m={m} k={k} n={n} \
                     ta={ta} tb={tb} alpha={alpha} beta={beta})",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn trsm_backends_agree_differentially(
        (n, w, seed, left, lower, unit, alpha) in (
            1usize..60, 1usize..24, any::<u64>(), any::<bool>(), any::<bool>(),
            any::<bool>(), -2.0f64..2.0,
        )
    ) {
        // Diagonally dominant triangle keeps the solve well conditioned so
        // the blocked and unblocked paths stay within a tight bound.
        let mut t = random_matrix(n, n, seed);
        for i in 0..n {
            for j in 0..n {
                let keep = if lower { j <= i } else { j >= i };
                if !keep {
                    t[(i, j)] = 0.0;
                }
            }
            t[(i, i)] = 3.0 + t[(i, i)].abs();
        }
        let b = if left {
            random_matrix(n, w, seed ^ 1)
        } else {
            random_matrix(w, n, seed ^ 1)
        };
        let side = if left { Side::Left } else { Side::Right };
        let uplo = if lower { Uplo::Lower } else { Uplo::Upper };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };

        let mut reference = b.clone();
        trsm_with(&Naive, side, uplo, diag, alpha, &t, &mut reference).unwrap();
        let mut x = b.clone();
        trsm_with(&Packed { parallel: false }, side, uplo, diag, alpha, &t, &mut x).unwrap();

        let tol = 1e-11 * (n as f64) * (alpha.abs() + 1.0);
        prop_assert!(
            x.approx_eq(&reference, tol),
            "blocked trsm deviates: n={n} w={w} left={left} lower={lower} unit={unit}"
        );
    }

    #[test]
    fn matmul_is_associative(
        (n, s1, s2, s3) in (1usize..12, any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let a = random_matrix(n, n, s1);
        let b = random_matrix(n, n, s2);
        let c = random_matrix(n, n, s3);
        let ab_c = &(&a * &b) * &c;
        let a_bc = &a * &(&b * &c);
        prop_assert!(ab_c.approx_eq(&a_bc, 1e-8));
    }

    #[test]
    fn pa_equals_lu((n, seed) in (1usize..40, any::<u64>())) {
        let a = random_well_conditioned(n, seed);
        let f = lu_decompose(&a).unwrap();
        let pa = f.perm.apply_rows(&a);
        prop_assert!(f.reconstruct().approx_eq(&pa, 1e-7 * n as f64));
    }

    #[test]
    fn full_inverse_via_lu_has_small_residual((n, seed) in (1usize..32, any::<u64>())) {
        let a = random_well_conditioned(n, seed);
        let f = lu_decompose(&a).unwrap();
        let l_inv = invert_lower(&f.unit_lower()).unwrap();
        let u_inv = invert_upper(&f.upper()).unwrap();
        let a_inv = f.perm.apply_cols(&(&u_inv * &l_inv));
        prop_assert!(inversion_residual(&a, &a_inv).unwrap() < 1e-6);
    }

    #[test]
    fn permutation_inverse_composes_to_identity(p in arb_perm(40)) {
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn permutation_array_matches_dense((p, seed) in (arb_perm(16), any::<u64>())) {
        let a = random_matrix(p.len(), p.len(), seed);
        prop_assert_eq!(p.apply_rows(&a), &p.to_matrix() * &a);
        prop_assert_eq!(p.apply_cols(&a), &a * &p.to_matrix());
    }

    #[test]
    fn quadrant_split_round_trips((n, split_frac, seed) in (2usize..24, 0.0f64..1.0, any::<u64>())) {
        let a = random_matrix(n, n, seed);
        let split = ((n as f64 * split_frac) as usize).min(n);
        let q = a.split_quadrants(split).unwrap();
        prop_assert_eq!(Matrix::from_quadrants(&q).unwrap(), a);
    }

    #[test]
    fn block_then_set_block_round_trips(
        (n, r0, r1, c0, c1, seed) in
            (4usize..20, 0usize..20, 0usize..20, 0usize..20, 0usize..20, any::<u64>())
    ) {
        let a = random_matrix(n, n, seed);
        let (r0, r1) = (r0.min(n), r1.min(n));
        let (c0, c1) = (c0.min(n), c1.min(n));
        prop_assume!(r0 <= r1 && c0 <= c1);
        let b = a.block(BlockRange::new((r0, r1), (c0, c1))).unwrap();
        let mut copy = a.clone();
        copy.set_block(r0, c0, &b).unwrap();
        prop_assert_eq!(copy, a);
    }

    #[test]
    fn even_ranges_partition_exactly((n, parts) in (0usize..500, 1usize..40)) {
        let ranges = even_ranges(n, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut expect_start = 0;
        for &(a, b) in &ranges {
            prop_assert_eq!(a, expect_start);
            prop_assert!(b >= a);
            // Sizes differ by at most one.
            prop_assert!(b - a <= n / parts + 1);
            expect_start = b;
        }
        prop_assert_eq!(expect_start, n);
    }

    #[test]
    fn vstack_of_stripes_rebuilds((n, cut, seed) in (2usize..20, 1usize..19, any::<u64>())) {
        let a = random_matrix(n, n, seed);
        let cut = cut.min(n - 1);
        let parts = [a.row_stripe(0, cut).unwrap(), a.row_stripe(cut, n).unwrap()];
        prop_assert_eq!(Matrix::vstack(&parts).unwrap(), a);
    }
}
