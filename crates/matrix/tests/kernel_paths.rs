//! The packed engine's perf path counters must label which loop nest
//! actually executed, so a serial fallback can never masquerade as a
//! parallel result (the `packed_parallel_gflops_at_64` bug).
//!
//! Runs as its own test binary with a single test: the counters and the
//! rayon pool are process-global, and this is the only way to control
//! the environment they are initialized from.

use mrinv_matrix::kernel::{gemm_with, notrans, perf, Packed};
use mrinv_matrix::random::random_matrix;
use mrinv_matrix::Matrix;

#[test]
fn packed_path_counters_label_fallback_vs_parallel() {
    // Pin the tune parameters and (absent an explicit override) a
    // 2-thread pool before anything touches the kernel: both are resolved
    // once per process on first use.
    std::env::set_var("MRINV_GEMM_TUNE", "default");
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "2");
    }
    let threads = rayon::current_num_threads();

    perf::reset();
    perf::set_enabled(true);
    let run = |n: usize, parallel: bool| {
        let a = random_matrix(n, n, 40);
        let b = random_matrix(n, n, 41);
        let mut c = Matrix::zeros(n, n);
        gemm_with(
            &Packed { parallel },
            1.0,
            notrans(&a),
            notrans(&b),
            0.0,
            &mut c,
        )
        .unwrap();
    };
    // 64³ = 262144 multiply-adds: below the default crossover → fallback.
    run(64, true);
    // 160³ ≈ 4.1M: above the crossover → parallel iff the pool has >1 thread.
    run(160, true);
    // The serial engine is not parallel-capable and records no path.
    run(160, false);
    perf::set_enabled(false);

    let snap = perf::snapshot();
    let packed = snap.iter().find(|p| p.backend == "packed").unwrap();
    assert_eq!(
        packed.par_calls + packed.fallback_calls,
        2,
        "every parallel-capable call must be labeled"
    );
    if threads > 1 {
        assert_eq!(packed.fallback_calls, 1, "n=64 must be labeled fallback");
        assert_eq!(packed.par_calls, 1, "n=160 must be labeled parallel");
    } else {
        assert_eq!(
            packed.fallback_calls, 2,
            "a single-thread pool must label every call fallback"
        );
    }
    let serial = snap.iter().find(|p| p.backend == "packed-serial").unwrap();
    assert_eq!(serial.par_calls, 0);
    assert_eq!(serial.fallback_calls, 0);
    perf::reset();
}
