//! Differential proptests for the packed engine's parallel loop nest:
//! `Packed { parallel: true }` vs `Packed { parallel: false }` across
//! thread caps (1 / 2 / max) and the ragged-shape families the old
//! `m > MC` gate used to exclude from parallelism.
//!
//! This binary forces the parallel nest on for *every* product
//! (`MRINV_GEMM_TUNE=par=0`) and gives the pool at least 4 threads, so
//! the comparison genuinely exercises the multi-threaded path even on a
//! small machine — which is why it lives in its own test binary: both
//! knobs are process-global and resolved at first kernel use.

use std::sync::Once;

use mrinv_matrix::kernel::{gemm_with, Naive, Op, Packed};
use mrinv_matrix::random::random_matrix;
use proptest::prelude::*;

fn force_parallel_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("MRINV_GEMM_TUNE", "par=0");
        if std::env::var_os("RAYON_NUM_THREADS").is_none() {
            std::env::set_var("RAYON_NUM_THREADS", "4");
        }
    });
}

/// Shape families: m ≤ MR slivers, wide-but-short, tall-and-skinny, and
/// generally ragged — all straddling the MR/NR/MC/KC tile edges.
fn arb_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..4, any::<u64>()).prop_map(|(family, s)| {
        let pick = |lo: usize, hi: usize, rot: u32| lo + (s.rotate_right(rot) as usize) % (hi - lo);
        match family {
            0 => (pick(1, 5, 0), pick(1, 96, 8), pick(1, 96, 16)), // m ≤ MR
            1 => (pick(1, 24, 0), pick(1, 64, 8), pick(120, 280, 16)), // wide-short
            2 => (pick(120, 280, 0), pick(1, 64, 8), pick(1, 24, 16)), // tall-skinny
            _ => (pick(1, 80, 0), pick(1, 80, 8), pick(1, 80, 16)), // ragged general
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_parallel_matches_serial_across_caps_and_ragged_shapes(
        ((m, k, n), s1, s2, s3, ta, tb, alpha, beta) in (
            arb_shape(),
            any::<u64>(), any::<u64>(), any::<u64>(),
            any::<bool>(), any::<bool>(),
            -2.0f64..2.0, -2.0f64..2.0,
        )
    ) {
        force_parallel_env();
        let a = random_matrix(if ta { k } else { m }, if ta { m } else { k }, s1);
        let b = random_matrix(if tb { n } else { k }, if tb { k } else { n }, s2);
        let c0 = random_matrix(m, n, s3);
        let op = |t: bool| if t { Op::Trans } else { Op::NoTrans };

        let mut naive = c0.clone();
        gemm_with(&Naive, alpha, op(ta).of(&a), op(tb).of(&b), beta, &mut naive).unwrap();
        let mut serial = c0.clone();
        gemm_with(
            &Packed { parallel: false },
            alpha, op(ta).of(&a), op(tb).of(&b), beta, &mut serial,
        ).unwrap();

        // The same k-linear forward-error bound the backend-agreement
        // proptest uses against the naive reference.
        let tol = 32.0 * f64::EPSILON * (k as f64 + 2.0)
            * (alpha.abs() * k as f64 + beta.abs() + 1.0);

        for cap in [1usize, 2, usize::MAX] {
            let prev = rayon::set_thread_cap(cap);
            let mut par = c0.clone();
            let r = gemm_with(
                &Packed { parallel: true },
                alpha, op(ta).of(&a), op(tb).of(&b), beta, &mut par,
            );
            rayon::set_thread_cap(prev);
            r.unwrap();

            // Design contract: the parallel nest is bitwise serial.
            prop_assert!(
                par == serial,
                "parallel differs from serial bitwise at cap={} (m={} k={} n={})",
                cap, m, k, n
            );
            // And both sit within the forward-error bound of naive.
            for (got, want) in par.as_slice().iter().zip(naive.as_slice()) {
                prop_assert!(
                    (got - want).abs() <= tol,
                    "parallel packed deviates from naive: {} vs {} (tol {}, cap={}, \
                     m={} k={} n={} ta={} tb={})",
                    got, want, tol, cap, m, k, n, ta, tb
                );
            }
        }
    }
}
