//! Block (submatrix) extraction and insertion.
//!
//! The paper's notation `[A][x1...x2][y1...y2]` denotes the block bounded by
//! rows `x1..x2` and columns `y1..y2` (begin inclusive, end exclusive,
//! Section 2). The recursive LU method of Figure 1 splits a square matrix
//! into quadrants `A1..A4`; [`Matrix::split_quadrants`] and [`Quadrants`]
//! implement exactly that split.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// A half-open block range: rows `rows.0..rows.1`, columns `cols.0..cols.1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRange {
    /// Row range (begin inclusive, end exclusive).
    pub rows: (usize, usize),
    /// Column range (begin inclusive, end exclusive).
    pub cols: (usize, usize),
}

impl BlockRange {
    /// Creates a block range.
    pub fn new(rows: (usize, usize), cols: (usize, usize)) -> Self {
        BlockRange { rows, cols }
    }

    /// Number of rows covered.
    pub fn nrows(&self) -> usize {
        self.rows.1 - self.rows.0
    }

    /// Number of columns covered.
    pub fn ncols(&self) -> usize {
        self.cols.1 - self.cols.0
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.nrows() * self.ncols()
    }

    /// True when the range covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, m: &Matrix, op: &'static str) -> Result<()> {
        if self.rows.0 > self.rows.1
            || self.cols.0 > self.cols.1
            || self.rows.1 > m.rows()
            || self.cols.1 > m.cols()
        {
            return Err(MatrixError::OutOfBounds {
                op,
                rows: self.rows,
                cols: self.cols,
                shape: m.shape(),
            });
        }
        Ok(())
    }
}

/// The four quadrants of Figure 1: `A1` top-left, `A2` top-right,
/// `A3` bottom-left, `A4` bottom-right.
#[derive(Debug, Clone)]
pub struct Quadrants {
    /// Top-left block (recursively decomposed).
    pub a1: Matrix,
    /// Top-right block (input to the `U2` computation).
    pub a2: Matrix,
    /// Bottom-left block (input to the `L2'` computation).
    pub a3: Matrix,
    /// Bottom-right block (updated to `A4 - L2' U2`).
    pub a4: Matrix,
}

impl Matrix {
    /// Extracts the block `[self][r1..r2][c1..c2]` into a new matrix.
    pub fn block(&self, range: BlockRange) -> Result<Matrix> {
        range.check(self, "block")?;
        let mut out = Matrix::zeros(range.nrows(), range.ncols());
        for (bi, i) in (range.rows.0..range.rows.1).enumerate() {
            let src = &self.row(i)[range.cols.0..range.cols.1];
            out.row_mut(bi).copy_from_slice(src);
        }
        Ok(out)
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        let range = BlockRange::new((r0, r0 + block.rows()), (c0, c0 + block.cols()));
        range.check(self, "set_block")?;
        let cols = block.cols();
        for bi in 0..block.rows() {
            let dst = &mut self.row_mut(r0 + bi)[c0..c0 + cols];
            dst.copy_from_slice(block.row(bi));
        }
        Ok(())
    }

    /// Splits a square matrix at row/column `split` into the four quadrants
    /// of Figure 1.
    ///
    /// Returns an error if the matrix is not square or `split` exceeds its
    /// order.
    ///
    /// ```
    /// use mrinv_matrix::Matrix;
    ///
    /// let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
    /// let q = a.split_quadrants(2).unwrap();
    /// assert_eq!(q.a1[(0, 0)], 0.0);  // top-left
    /// assert_eq!(q.a4[(0, 0)], 10.0); // bottom-right starts at (2, 2)
    /// assert_eq!(Matrix::from_quadrants(&q).unwrap(), a);
    /// ```
    pub fn split_quadrants(&self, split: usize) -> Result<Quadrants> {
        let n = self.order()?;
        if split > n {
            return Err(MatrixError::OutOfBounds {
                op: "split_quadrants",
                rows: (0, split),
                cols: (0, split),
                shape: self.shape(),
            });
        }
        Ok(Quadrants {
            a1: self.block(BlockRange::new((0, split), (0, split)))?,
            a2: self.block(BlockRange::new((0, split), (split, n)))?,
            a3: self.block(BlockRange::new((split, n), (0, split)))?,
            a4: self.block(BlockRange::new((split, n), (split, n)))?,
        })
    }

    /// Reassembles four quadrants into one square matrix (inverse of
    /// [`Matrix::split_quadrants`]).
    pub fn from_quadrants(q: &Quadrants) -> Result<Matrix> {
        let top = q.a1.rows();
        let bottom = q.a3.rows();
        let left = q.a1.cols();
        let right = q.a2.cols();
        if q.a2.rows() != top
            || q.a4.rows() != bottom
            || q.a3.cols() != left
            || q.a4.cols() != right
        {
            return Err(MatrixError::DimensionMismatch {
                op: "from_quadrants",
                lhs: q.a1.shape(),
                rhs: q.a4.shape(),
            });
        }
        let mut m = Matrix::zeros(top + bottom, left + right);
        m.set_block(0, 0, &q.a1)?;
        m.set_block(0, left, &q.a2)?;
        m.set_block(top, 0, &q.a3)?;
        m.set_block(top, left, &q.a4)?;
        Ok(m)
    }

    /// Extracts rows `r1..r2` as a new matrix (a horizontal stripe).
    ///
    /// Mappers in the partitioning job each read an equal number of
    /// consecutive rows for I/O sequentiality (Section 5.2).
    pub fn row_stripe(&self, r1: usize, r2: usize) -> Result<Matrix> {
        self.block(BlockRange::new((r1, r2), (0, self.cols())))
    }

    /// Extracts columns `c1..c2` as a new matrix (a vertical stripe).
    pub fn col_stripe(&self, c1: usize, c2: usize) -> Result<Matrix> {
        self.block(BlockRange::new((0, self.rows()), (c1, c2)))
    }

    /// Stacks matrices vertically (all must share a column count).
    pub fn vstack(parts: &[Matrix]) -> Result<Matrix> {
        let cols = parts.first().map_or(0, Matrix::cols);
        let rows: usize = parts.iter().map(Matrix::rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for p in parts {
            if p.cols() != cols {
                return Err(MatrixError::DimensionMismatch {
                    op: "vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            out.set_block(r, 0, p)?;
            r += p.rows();
        }
        Ok(out)
    }

    /// Stacks matrices horizontally (all must share a row count).
    pub fn hstack(parts: &[Matrix]) -> Result<Matrix> {
        let rows = parts.first().map_or(0, Matrix::rows);
        let cols: usize = parts.iter().map(Matrix::cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c = 0;
        for p in parts {
            if p.rows() != rows {
                return Err(MatrixError::DimensionMismatch {
                    op: "hstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            out.set_block(0, c, p)?;
            c += p.cols();
        }
        Ok(out)
    }
}

/// Splits the length `n` into `parts` contiguous chunk ranges of (almost)
/// equal size; earlier chunks take the remainder.
///
/// Used everywhere the paper divides rows or columns evenly across `m0`
/// workers.
pub fn even_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64)
    }

    #[test]
    fn block_extraction_matches_elements() {
        let m = sample();
        let b = m.block(BlockRange::new((1, 3), (2, 5))).unwrap();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 2)], m[(2, 4)]);
    }

    #[test]
    fn block_bounds_are_checked() {
        let m = sample();
        assert!(m.block(BlockRange::new((0, 7), (0, 2))).is_err());
        assert!(m.block(BlockRange::new((3, 2), (0, 2))).is_err());
    }

    #[test]
    fn set_block_round_trips() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::filled(2, 2, 9.0);
        m.set_block(1, 2, &b).unwrap();
        assert_eq!(m[(1, 2)], 9.0);
        assert_eq!(m[(2, 3)], 9.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert!(m.set_block(3, 3, &b).is_err());
    }

    #[test]
    fn quadrants_round_trip() {
        let m = sample();
        let q = m.split_quadrants(2).unwrap();
        assert_eq!(q.a1.shape(), (2, 2));
        assert_eq!(q.a4.shape(), (4, 4));
        assert_eq!(q.a3[(0, 0)], m[(2, 0)]);
        let back = Matrix::from_quadrants(&q).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn quadrants_validate_input() {
        assert!(Matrix::zeros(2, 3).split_quadrants(1).is_err());
        assert!(sample().split_quadrants(7).is_err());
        let q = sample().split_quadrants(2).unwrap();
        let bad = Quadrants {
            a2: Matrix::zeros(3, 4),
            ..q
        };
        assert!(Matrix::from_quadrants(&bad).is_err());
    }

    #[test]
    fn stripes() {
        let m = sample();
        let rs = m.row_stripe(2, 4).unwrap();
        assert_eq!(rs.shape(), (2, 6));
        assert_eq!(rs[(0, 0)], 12.0);
        let cs = m.col_stripe(4, 6).unwrap();
        assert_eq!(cs.shape(), (6, 2));
        assert_eq!(cs[(0, 0)], 4.0);
    }

    #[test]
    fn stacking_round_trips() {
        let m = sample();
        let top = m.row_stripe(0, 2).unwrap();
        let bottom = m.row_stripe(2, 6).unwrap();
        assert_eq!(Matrix::vstack(&[top, bottom]).unwrap(), m);

        let left = m.col_stripe(0, 3).unwrap();
        let right = m.col_stripe(3, 6).unwrap();
        assert_eq!(Matrix::hstack(&[left, right]).unwrap(), m);
    }

    #[test]
    fn stacking_validates_shapes() {
        assert!(Matrix::vstack(&[Matrix::zeros(1, 2), Matrix::zeros(1, 3)]).is_err());
        assert!(Matrix::hstack(&[Matrix::zeros(2, 1), Matrix::zeros(3, 1)]).is_err());
    }

    #[test]
    fn even_ranges_cover_everything() {
        assert_eq!(even_ranges(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(
            even_ranges(3, 5),
            vec![(0, 1), (1, 2), (2, 3), (3, 3), (3, 3)]
        );
        let r = even_ranges(0, 3);
        assert!(r.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn block_range_accessors() {
        let r = BlockRange::new((1, 4), (2, 2));
        assert_eq!(r.nrows(), 3);
        assert_eq!(r.ncols(), 0);
        assert!(r.is_empty());
        assert_eq!(BlockRange::new((0, 2), (0, 5)).len(), 10);
    }
}
