//! Row-major dense `f64` matrix.
//!
//! The paper stores matrices row-major both in memory and in HDFS
//! (Section 6.3); [`Matrix`] follows the same convention. Element `(i, j)`
//! lives at linear offset `i * cols + j`.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::{MatrixError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// Cloning copies the data; matrices used by the distributed pipeline are
/// passed through the DFS as serialized blocks instead (see [`crate::io`]).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    ///
    /// Returns an error if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(MatrixError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (r, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds an `n x n` matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The order of a square matrix.
    ///
    /// Returns an error for non-square matrices.
    pub fn order(&self) -> Result<usize> {
        if self.is_square() {
            Ok(self.rows)
        } else {
            Err(MatrixError::NotSquare {
                shape: self.shape(),
            })
        }
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterate over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Swap rows `a` and `b` in place (used by pivoting).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Returns the transpose as a new matrix.
    ///
    /// The pipeline stores `U` transposed (Section 6.3) so that the inner
    /// product in the multiply kernels walks both operands row-major.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Element-wise maximum absolute difference against `other`.
    ///
    /// Returns an error if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other).unwrap() <= tol
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self * v` for a column vector `v`.
    ///
    /// Returns an error if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_SHOWN: usize = 8;
        for i in 0..self.rows.min(MAX_SHOWN) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(MAX_SHOWN) {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            if self.cols > MAX_SHOWN {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > MAX_SHOWN {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        let data = self.data.iter().map(|a| -a).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Convenience operator; delegates to [`crate::kernel::gemm`] through
    /// the process-wide backend. Hot paths with transposed operands or
    /// accumulation should call `gemm` directly.
    fn mul(self, rhs: &Matrix) -> Matrix {
        use crate::kernel::{gemm, notrans};
        let mut c = Matrix::zeros(self.rows(), rhs.cols());
        gemm(1.0, notrans(self), notrans(rhs), 0.0, &mut c)
            .expect("matrix multiplication shape mismatch");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates_shape() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn from_fn_builds_expected_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn diagonal_matrix() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn order_requires_square() {
        assert_eq!(Matrix::zeros(3, 3).order().unwrap(), 3);
        assert!(Matrix::zeros(2, 3).order().is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert_eq!(m.row_iter().count(), 2);
    }

    #[test]
    fn swap_rows_in_place() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 1)] = 1.0 + 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(a.max_abs_diff(&Matrix::zeros(3, 3)).is_err());
        assert!((a.max_abs_diff(&b).unwrap() - 1e-9).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let neg = -&a;
        assert_eq!(neg[(1, 0)], -3.0);
        let prod = &a * &b;
        assert_eq!(prod, a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn scale_in_place_scales_everything() {
        let mut a = Matrix::filled(2, 2, 2.0);
        a.scale_in_place(0.5);
        assert!(a.approx_eq(&Matrix::filled(2, 2, 1.0), 0.0));
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(
            s.len() < 2500,
            "debug output should truncate large matrices"
        );
        assert!(s.contains("Matrix 100x100"));
    }
}
