//! Dense linear-algebra substrate for the MapReduce matrix-inversion system.
//!
//! This crate provides everything the distributed algorithm builds on:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with block extraction and
//!   insertion (the paper's `[A][x1...x2][y1...y2]` notation, Section 2);
//! * [`lu`] — single-node LU decomposition with partial pivoting
//!   (Algorithm 1 of the paper), used on the master node for blocks of order
//!   at most `nb`;
//! * [`triangular`] — inverses of unit-lower and upper triangular matrices
//!   (Equation 4) and forward/back substitution;
//! * [`kernel`] — the BLAS-3 engine: one `gemm` entry point over pluggable
//!   backends (packed cache-blocked default, bit-exact naive reference,
//!   Equation 7 strided ablation), blocked TRSM, and blocked LU — `gemm`
//!   and `trsm` are re-exported at the crate root as the blessed entry
//!   points;
//! * [`permutation`] — the compact `S`-array representation of the pivot
//!   permutation matrix `P`;
//! * [`random`] — seeded random test-matrix generation (Section 7.1);
//! * [`io`] — the text and binary matrix codecs used for DFS storage
//!   (Table 3 reports both formats);
//! * [`gauss_jordan`], [`qr`], [`cholesky`] — the alternative inversion
//!   methods the paper weighs in Section 2/3 (and rejects for MapReduce),
//!   implemented so the comparison is executable;
//! * [`refine`] — Newton–Schulz polish of a computed inverse (the
//!   numerical-stability follow-up the paper defers to future work).
//!
//! The crate is deliberately free of any distributed-systems concerns; the
//! MapReduce framework and the pipeline live in sibling crates.

#![warn(missing_docs)]

pub mod block;
pub mod cholesky;
pub mod dense;
pub mod error;
pub mod gauss_jordan;
pub mod io;
pub mod kernel;
pub mod lu;
pub mod norms;
pub mod permutation;
pub mod qr;
pub mod random;
pub mod refine;
pub mod triangular;

pub use dense::Matrix;
pub use error::{MatrixError, Result};
pub use kernel::{gemm, gemm_flops, gemm_with, notrans, trans, trsm, trsm_with};
pub use permutation::Permutation;

/// Default absolute tolerance used by tests and accuracy checks.
///
/// The paper validates `I - M * M^-1` element-wise against `1e-5`
/// (Section 7.2); we adopt the same threshold as this crate's reference
/// tolerance.
pub const PAPER_ACCURACY: f64 = 1e-5;
