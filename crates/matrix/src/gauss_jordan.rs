//! Gauss-Jordan elimination — the paper's first considered-and-rejected
//! inversion method (Section 2).
//!
//! The method concatenates `[A | I]` and row-reduces the left half to the
//! identity, leaving `A^-1` on the right. It uses the same `n³`
//! multiplications as LU-based inversion, but its `2n` sequential
//! elimination steps each depend on the previous one, so a MapReduce port
//! would need a pipeline of `~n` jobs (the paper cites Quintana et al.'s
//! parallel version needing `n` iterations) — versus the block-LU
//! pipeline's `2^⌈log2(n/nb)⌉`. This implementation exists to make that
//! Section 2 comparison executable: same answers, hopeless job count.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// Inverts `a` by Gauss-Jordan elimination with partial pivoting.
pub fn invert_gauss_jordan(a: &Matrix) -> Result<Matrix> {
    let n = a.order()?;
    // Augmented system [A | I], row-major.
    let mut left = a.clone();
    let mut right = Matrix::identity(n);
    let scale = a.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let tol = if scale == 0.0 {
        f64::MIN_POSITIVE
    } else {
        scale * f64::EPSILON * n as f64
    };

    // Forward phase: reduce the left half to upper triangular with unit
    // diagonal (the first n steps of Equation 1).
    for k in 0..n {
        // Pivot: swap in the row with the largest |element| in column k.
        let mut pivot_row = k;
        let mut pivot_val = left[(k, k)].abs();
        for r in (k + 1)..n {
            let v = left[(r, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < tol {
            return Err(MatrixError::Singular { step: k });
        }
        left.swap_rows(k, pivot_row);
        right.swap_rows(k, pivot_row);

        // Normalize row k so the pivot is 1.
        let inv_pivot = 1.0 / left[(k, k)];
        for j in 0..n {
            left[(k, j)] *= inv_pivot;
            right[(k, j)] *= inv_pivot;
        }
        // Eliminate below.
        for r in (k + 1)..n {
            let f = left[(r, k)];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                let lv = left[(k, j)];
                let rv = right[(k, j)];
                left[(r, j)] -= f * lv;
                right[(r, j)] -= f * rv;
            }
        }
    }

    // Backward phase: clear above the diagonal (the second n steps).
    for k in (0..n).rev() {
        for r in 0..k {
            let f = left[(r, k)];
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                let lv = left[(k, j)];
                let rv = right[(k, j)];
                left[(r, j)] -= f * lv;
                right[(r, j)] -= f * rv;
            }
        }
    }
    Ok(right)
}

/// Number of sequential elimination steps Gauss-Jordan needs — the
/// quantity that makes it unsuitable for MapReduce (Section 2: "a pipeline
/// of n MapReduce jobs").
pub fn gauss_jordan_sequential_steps(n: usize) -> usize {
    2 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::inversion_residual;
    use crate::random::{random_invertible, random_well_conditioned};

    #[test]
    fn inverts_well_conditioned_matrices() {
        for &n in &[1usize, 2, 8, 33, 64] {
            let a = random_well_conditioned(n, n as u64);
            let inv = invert_gauss_jordan(&a).unwrap();
            let res = inversion_residual(&a, &inv).unwrap();
            assert!(res < 1e-9, "n={n}: residual {res}");
        }
    }

    #[test]
    fn pivoting_handles_general_matrices() {
        for seed in 0..4 {
            let a = random_invertible(40, seed);
            let inv = invert_gauss_jordan(&a).unwrap();
            assert!(inversion_residual(&a, &inv).unwrap() < 1e-7);
        }
    }

    #[test]
    fn agrees_with_lu_based_inversion() {
        use crate::lu::lu_decompose;
        use crate::triangular::{invert_lower, invert_upper};
        let a = random_invertible(32, 9);
        let gj = invert_gauss_jordan(&a).unwrap();
        let f = lu_decompose(&a).unwrap();
        let via_lu = f.perm.apply_cols(
            &(&invert_upper(&f.upper()).unwrap() * &invert_lower(&f.unit_lower()).unwrap()),
        );
        assert!(gj.approx_eq(&via_lu, 1e-8));
    }

    #[test]
    fn rejects_singular_and_non_square() {
        assert!(invert_gauss_jordan(&Matrix::zeros(4, 4)).is_err());
        assert!(invert_gauss_jordan(&Matrix::zeros(2, 3)).is_err());
        // An exact zero row is unambiguously singular. (A *duplicated* row
        // can survive the threshold after pivot swaps reorder the
        // eliminations and leave rounding residue — LU's unnormalized
        // elimination detects that case more reliably; see
        // crate::lu::tests::singular_matrix_is_detected.)
        let mut a = random_well_conditioned(8, 1);
        for v in a.row_mut(5) {
            *v = 0.0;
        }
        assert!(invert_gauss_jordan(&a).is_err());
    }

    #[test]
    fn sequential_step_count_is_linear() {
        // The Section 2 argument: 2n dependent steps vs the block method's
        // logarithmic pipeline.
        assert_eq!(gauss_jordan_sequential_steps(100_000), 200_000);
    }

    #[test]
    fn zero_pivot_column_requires_swap() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let inv = invert_gauss_jordan(&a).unwrap();
        assert!(
            inv.approx_eq(&a, 1e-12),
            "permutation matrix is its own inverse"
        );
    }
}
