//! Triangular solves and inverses (Equation 4 and Equation 6).
//!
//! Two observations from the paper drive the API shape here:
//!
//! * each *column* of a lower-triangular inverse is independent of the other
//!   columns (Section 4.3), so the final MapReduce job's mappers call
//!   [`invert_lower_column`] on their interleaved column set;
//! * each *row* of `L2'` and each *column* of `U2` in Equation 6 is
//!   independent, so the LU pipeline's mappers call
//!   [`solve_row_times_upper`] / [`solve_unit_lower_column`] per vector.
//!
//! Upper-triangular matrices are inverted through their transpose
//! (a lower-triangular inverse followed by a transpose), matching the
//! Section 5/6.3 implementation note.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::kernel::{Diag, Side, Uplo};

pub use crate::kernel::{trsm, trsm_with};

fn check_square(a: &Matrix, _op: &'static str) -> Result<usize> {
    a.order()
}

fn check_nonzero_diag(a: &Matrix) -> Result<()> {
    let n = a.rows();
    for i in 0..n {
        if a[(i, i)] == 0.0 {
            return Err(MatrixError::Singular { step: i });
        }
    }
    Ok(())
}

/// Approximate flop count of inverting an order-`n` triangular matrix
/// (`n^3/3` multiplications plus `n^3/3` additions).
pub fn tri_inv_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3
}

/// Computes column `j` of `L^-1` by Equation 4.
///
/// Returns the column as a dense vector of length `n` (entries above the
/// diagonal are zero). `l` may have any nonzero diagonal; for the
/// pipeline's unit-lower factors the `1/[L]_ii` terms are exactly 1.
pub fn invert_lower_column(l: &Matrix, j: usize) -> Result<Vec<f64>> {
    let n = check_square(l, "invert_lower_column")?;
    if j >= n {
        return Err(MatrixError::OutOfBounds {
            op: "invert_lower_column",
            rows: (0, n),
            cols: (j, j + 1),
            shape: l.shape(),
        });
    }
    check_nonzero_diag(l)?;
    let mut col = vec![0.0; n];
    col[j] = 1.0 / l[(j, j)];
    for i in (j + 1)..n {
        // [L^-1]_ij = -1/[L]_ii * sum_{k=j}^{i-1} [L]_ik [L^-1]_kj
        let row = l.row(i);
        let mut acc = 0.0;
        for (k, &ck) in col.iter().enumerate().take(i).skip(j) {
            acc += row[k] * ck;
        }
        col[i] = -acc / row[i];
    }
    Ok(col)
}

/// Inverts a lower-triangular matrix by Equation 4, column by column.
pub fn invert_lower(l: &Matrix) -> Result<Matrix> {
    let n = check_square(l, "invert_lower")?;
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        let col = invert_lower_column(l, j)?;
        for i in j..n {
            inv[(i, j)] = col[i];
        }
    }
    Ok(inv)
}

/// Inverts an upper-triangular matrix via its transpose: `U^-1 =
/// ((U^T)^-1)^T` — the implementation detail the paper calls out in
/// Section 4.1/6.3.
pub fn invert_upper(u: &Matrix) -> Result<Matrix> {
    let lt = u.transpose();
    Ok(invert_lower(&lt)?.transpose())
}

/// Inverts an upper-triangular matrix *given in transposed storage*
/// (i.e. the argument is `U^T`, a lower-triangular matrix), returning
/// `U^-1` also in transposed storage (`(U^-1)^T`, lower-triangular).
///
/// With the Section 6.3 layout the final job never materializes a
/// row-major `U` at all; everything stays in the transposed form.
pub fn invert_upper_transposed(u_t: &Matrix) -> Result<Matrix> {
    invert_lower(u_t)
}

/// Solves `L·x = b` by forward substitution (any nonzero diagonal).
pub fn forward_substitution(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(l, "forward_substitution")?;
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "forward_substitution",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    check_nonzero_diag(l)?;
    let mut x = vec![0.0; n];
    for i in 0..n {
        let row = l.row(i);
        let mut acc = b[i];
        for (k, &xk) in x.iter().enumerate().take(i) {
            acc -= row[k] * xk;
        }
        x[i] = acc / row[i];
    }
    Ok(x)
}

/// Solves `U·x = b` by back substitution (any nonzero diagonal).
pub fn back_substitution(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(u, "back_substitution")?;
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "back_substitution",
            lhs: u.shape(),
            rhs: (b.len(), 1),
        });
    }
    check_nonzero_diag(u)?;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut acc = b[i];
        for k in (i + 1)..n {
            acc -= row[k] * x[k];
        }
        x[i] = acc / row[i];
    }
    Ok(x)
}

/// Computes one column of `U2` in Equation 6: solves `L1·x = a2_col` where
/// `L1` is unit lower triangular (the `1/[L1]_ii` factors are 1).
///
/// This is the per-column kernel a `U2` mapper runs for each of its
/// assigned columns of `A2`.
pub fn solve_unit_lower_column(l1: &Matrix, a2_col: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(l1, "solve_unit_lower_column")?;
    if a2_col.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_unit_lower_column",
            lhs: l1.shape(),
            rhs: (a2_col.len(), 1),
        });
    }
    let mut x = a2_col.to_vec();
    for i in 0..n {
        let row = l1.row(i);
        let mut acc = x[i];
        for (k, &xk) in x.iter().enumerate().take(i) {
            acc -= row[k] * xk;
        }
        x[i] = acc; // unit diagonal: no division
    }
    Ok(x)
}

/// Computes one row of `L2'` in Equation 6: solves `x·U1 = a3_row`, i.e.
/// `U1ᵀ·xᵀ = a3_rowᵀ`, a forward substitution against the transposed upper
/// factor.
///
/// This is the per-row kernel an `L2'` mapper runs for each of its assigned
/// rows of `A3`. `u1` is passed row-major (not transposed); the kernel
/// walks it column-wise which is acceptable for `nb`-sized blocks, and the
/// transposed-storage variant [`solve_row_times_upper_transposed`] is the
/// Section 6.3 fast path.
pub fn solve_row_times_upper(u1: &Matrix, a3_row: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(u1, "solve_row_times_upper")?;
    if a3_row.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_row_times_upper",
            lhs: u1.shape(),
            rhs: (1, a3_row.len()),
        });
    }
    check_nonzero_diag(u1)?;
    let mut x = vec![0.0; n];
    for j in 0..n {
        // x_j = (a_j - sum_{k<j} x_k * U1[k, j]) / U1[j, j]
        let mut acc = a3_row[j];
        for (k, &xk) in x.iter().enumerate().take(j) {
            acc -= xk * u1[(k, j)];
        }
        x[j] = acc / u1[(j, j)];
    }
    Ok(x)
}

/// [`solve_row_times_upper`] with `U1` supplied in transposed storage
/// (`u1_t = U1ᵀ`, lower triangular), so every access is row-major.
pub fn solve_row_times_upper_transposed(u1_t: &Matrix, a3_row: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(u1_t, "solve_row_times_upper_transposed")?;
    if a3_row.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_row_times_upper_transposed",
            lhs: u1_t.shape(),
            rhs: (1, a3_row.len()),
        });
    }
    check_nonzero_diag(u1_t)?;
    let mut x = vec![0.0; n];
    for j in 0..n {
        let row = u1_t.row(j);
        let mut acc = a3_row[j];
        for (k, &xk) in x.iter().enumerate().take(j) {
            acc -= xk * row[k];
        }
        x[j] = acc / row[j];
    }
    Ok(x)
}

/// Solves `L1·X = B` (`X = L1^-1·B` for unit-lower `L1`): the matrix-level
/// form of the `U2` computation. Thin wrapper over [`trsm`].
pub fn solve_unit_lower_system(l1: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut x = b.clone();
    trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l1, &mut x)?;
    Ok(x)
}

/// Solves `X·U1 = B` (`X = B·U1^-1`): the matrix-level form of the `L2'`
/// computation. Thin wrapper over [`trsm`].
pub fn solve_upper_system_right(u1: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut x = b.clone();
    trsm(Side::Right, Uplo::Upper, Diag::NonUnit, 1.0, u1, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::lu_decompose;
    use crate::random::{random_matrix, random_unit_lower, random_upper};

    const TOL: f64 = 1e-8;

    #[test]
    fn lower_inverse_identity_product() {
        for seed in 0..4 {
            let l = random_unit_lower(15 + seed as usize, seed);
            let inv = invert_lower(&l).unwrap();
            assert!((&l * &inv).approx_eq(&Matrix::identity(l.rows()), TOL));
            assert!((&inv * &l).approx_eq(&Matrix::identity(l.rows()), TOL));
        }
    }

    #[test]
    fn lower_inverse_is_lower_triangular() {
        let l = random_unit_lower(10, 5);
        let inv = invert_lower(&l).unwrap();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_eq!(inv[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn non_unit_lower_diagonal_handled() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[3.0, 4.0]]).unwrap();
        let inv = invert_lower(&l).unwrap();
        assert!((&l * &inv).approx_eq(&Matrix::identity(2), 1e-12));
        assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn upper_inverse_via_transpose() {
        for seed in 0..4 {
            let u = random_upper(12 + seed as usize, seed + 10);
            let inv = invert_upper(&u).unwrap();
            assert!((&u * &inv).approx_eq(&Matrix::identity(u.rows()), TOL));
        }
    }

    #[test]
    fn upper_inverse_transposed_storage() {
        let u = random_upper(14, 77);
        let u_t = u.transpose();
        let inv_t = invert_upper_transposed(&u_t).unwrap();
        assert!(inv_t
            .transpose()
            .approx_eq(&invert_upper(&u).unwrap(), 1e-10));
    }

    #[test]
    fn singular_triangular_rejected() {
        let mut l = random_unit_lower(5, 1);
        l[(2, 2)] = 0.0;
        assert!(invert_lower(&l).is_err());
        assert!(invert_lower_column(&l, 0).is_err());
        assert!(forward_substitution(&l, &[1.0; 5]).is_err());
    }

    #[test]
    fn column_kernel_matches_full_inverse() {
        let l = random_unit_lower(9, 3);
        let inv = invert_lower(&l).unwrap();
        for j in 0..9 {
            let col = invert_lower_column(&l, j).unwrap();
            for i in 0..9 {
                assert!((col[i] - inv[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(invert_lower_column(&l, 9).is_err());
    }

    #[test]
    fn forward_and_back_substitution() {
        let l = random_unit_lower(8, 2);
        let x_true: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let b = l.mul_vec(&x_true).unwrap();
        let x = forward_substitution(&l, &b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < TOL);
        }

        let u = random_upper(8, 4);
        let b = u.mul_vec(&x_true).unwrap();
        let x = back_substitution(&u, &b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn substitution_validates_shapes() {
        let l = random_unit_lower(4, 0);
        assert!(forward_substitution(&l, &[0.0; 3]).is_err());
        assert!(back_substitution(&l, &[0.0; 5]).is_err());
        assert!(forward_substitution(&Matrix::zeros(2, 3), &[0.0; 2]).is_err());
    }

    #[test]
    fn eq6_u2_kernel_solves_l1_x_eq_a2() {
        // U2 = L1^-1 A2, per column.
        let l1 = random_unit_lower(10, 6);
        let a2 = random_matrix(10, 7, 7);
        let u2 = solve_unit_lower_system(&l1, &a2).unwrap();
        assert!((&l1 * &u2).approx_eq(&a2, TOL));
    }

    #[test]
    fn eq6_l2_kernel_solves_x_u1_eq_a3() {
        // L2' U1 = A3, per row.
        let u1 = random_upper(10, 8);
        let a3 = random_matrix(6, 10, 9);
        let l2 = solve_upper_system_right(&u1, &a3).unwrap();
        assert!((&l2 * &u1).approx_eq(&a3, TOL));
        // Row kernel agrees with the transposed-storage fast path.
        let u1_t = u1.transpose();
        for i in 0..6 {
            let a = solve_row_times_upper(&u1, a3.row(i)).unwrap();
            let b = solve_row_times_upper_transposed(&u1_t, a3.row(i)).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eq6_consistency_with_lu_factors() {
        // For PA = LU of a full matrix, the Eq. 6 kernels recover the
        // U2/L2' blocks of the block decomposition.
        let a = random_matrix(12, 12, 11);
        let f = lu_decompose(&a).unwrap();
        let l = f.unit_lower();
        let u = f.upper();
        let pa = f.perm.apply_rows(&a);

        let k = 5;
        let l1 = l
            .block(crate::block::BlockRange::new((0, k), (0, k)))
            .unwrap();
        let u1 = u
            .block(crate::block::BlockRange::new((0, k), (0, k)))
            .unwrap();
        let pa2 = pa
            .block(crate::block::BlockRange::new((0, k), (k, 12)))
            .unwrap();
        let pa3 = pa
            .block(crate::block::BlockRange::new((k, 12), (0, k)))
            .unwrap();

        let u2 = solve_unit_lower_system(&l1, &pa2).unwrap();
        let expect_u2 = u
            .block(crate::block::BlockRange::new((0, k), (k, 12)))
            .unwrap();
        assert!(u2.approx_eq(&expect_u2, TOL));

        let l2 = solve_upper_system_right(&u1, &pa3).unwrap();
        let expect_l2 = l
            .block(crate::block::BlockRange::new((k, 12), (0, k)))
            .unwrap();
        assert!(l2.approx_eq(&expect_l2, TOL));
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(tri_inv_flops(0), 0);
        assert_eq!(tri_inv_flops(6), 144);
    }
}
