//! BLAS-3-style dense kernel engine: one `gemm` entry point, packed
//! cache-blocked execution, blocked TRSM, and a right-looking blocked LU.
//!
//! The paper's single-node baseline (ScaLAPACK on tuned BLAS) spends its
//! time in exactly three level-3 kernels — GEMM, TRSM, and the LU panel
//! update — and the distributed pipeline's map/reduce tasks bottom out in
//! the same operations. This module replaces the nine overlapping naive
//! triple-loop entry points that used to live in the removed `multiply`
//! module with a single surface (re-exported at the crate root):
//!
//! * [`gemm`] — `C := alpha * op(A) * op(B) + beta * C` with
//!   [`Op::NoTrans`]/[`Op::Trans`] per operand;
//! * [`trsm`] — `B := alpha * T^-1 * B` (left) or `alpha * B * T^-1`
//!   (right) for triangular `T`, all [`Side`]/[`Uplo`]/[`Diag`] cases;
//! * [`lu_blocked`] — right-looking blocked LU whose trailing updates are
//!   the two kernels above.
//!
//! Execution strategy is pluggable through [`GemmBackend`]:
//!
//! * [`Packed`] — the real engine: panels of `A` and `B` are packed into
//!   contiguous, register-block-sized buffers, the MC/KC/NC loop nest
//!   keeps them L1/L2-resident, an MR×NR register-tiled microkernel does
//!   the flops (with an AVX2+FMA path selected at runtime on x86-64), and
//!   rayon parallelizes over macro-tile rows;
//! * [`Naive`] — the reference loop orders the seed pipeline used
//!   (i-k-j row-streaming, and the Section 6.3 unrolled-dot form when the
//!   right operand is supplied transposed). Differential tests pin the
//!   Packed backend against this one, and the end-to-end Naive pipeline
//!   is bit-identical to the pre-engine implementation;
//! * [`Blocked`] — the cache-tiled (but unpacked) middle rung, kept for
//!   benchmarks to show where packing itself matters;
//! * [`Strided`] — Equation 7's i-j-k loop with a column-strided read of
//!   the right operand: the paper's *unoptimized* kernel, preserved as an
//!   explicit backend so the Section 6.3 ablation stays honest.
//!
//! The process-wide default backend is [`Packed`]; set the
//! `MRINV_GEMM_BACKEND` environment variable to `naive`, `strided`,
//! `blocked`, `packed`, or `packed-serial` to A/B the whole pipeline
//! against another engine without recompiling.

// The reference backends index rows explicitly so the access pattern under
// discussion (row-major vs column-strided) stays visible in the code.
#![allow(clippy::needless_range_loop)]

mod lu;
mod naive;
mod packed;
pub mod perf;
mod trsm;
pub mod tune;

use std::sync::atomic::{AtomicU8, Ordering};

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

pub use lu::{lu_blocked, lu_blocked_in_place};
pub use naive::dot;
pub use trsm::{trsm, trsm_with};

/// Transposition state of a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand's transpose.
    Trans,
}

impl Op {
    /// Wraps a matrix reference with this transposition state:
    /// `Op::Trans.of(&u_t)` reads as "the transpose of `u_t`".
    pub fn of(self, mat: &Matrix) -> OpRef<'_> {
        OpRef { op: self, mat }
    }
}

/// A borrowed GEMM operand together with its transposition state.
#[derive(Clone, Copy)]
pub struct OpRef<'a> {
    /// How the operand participates in the product.
    pub op: Op,
    /// The underlying storage.
    pub mat: &'a Matrix,
}

impl OpRef<'_> {
    /// Logical row count (after applying `op`).
    #[inline]
    pub fn rows(&self) -> usize {
        match self.op {
            Op::NoTrans => self.mat.rows(),
            Op::Trans => self.mat.cols(),
        }
    }

    /// Logical column count (after applying `op`).
    #[inline]
    pub fn cols(&self) -> usize {
        match self.op {
            Op::NoTrans => self.mat.cols(),
            Op::Trans => self.mat.rows(),
        }
    }

    /// Logical element `(i, j)` (after applying `op`).
    #[inline]
    pub(crate) fn at(&self, i: usize, j: usize) -> f64 {
        match self.op {
            Op::NoTrans => self.mat[(i, j)],
            Op::Trans => self.mat[(j, i)],
        }
    }
}

/// `op(A)` with `op = NoTrans`: the operand as stored.
pub fn notrans(mat: &Matrix) -> OpRef<'_> {
    Op::NoTrans.of(mat)
}

/// `op(A)` with `op = Trans`: the operand's transpose.
pub fn trans(mat: &Matrix) -> OpRef<'_> {
    Op::Trans.of(mat)
}

/// Which side of `B` the triangular operand of [`trsm`] sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `T · X = alpha · B` (overwrites `B` with `X`).
    Left,
    /// Solve `X · T = alpha · B` (overwrites `B` with `X`).
    Right,
}

/// Which triangle of the [`trsm`] operand holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are implicitly 1 and never read.
    Unit,
    /// Diagonal entries are read (and must be nonzero).
    NonUnit,
}

/// A GEMM execution strategy.
///
/// Implementations must compute `C := alpha * op(A) * op(B) + beta * C`
/// exactly per their documented summation order; shape validation is done
/// by the caller ([`gemm_with`]) before dispatch.
pub trait GemmBackend: Sync {
    /// Computes `C := alpha * op(A) * op(B) + beta * C`. Shapes are
    /// already validated: `a.rows() == c.rows()`, `b.cols() == c.cols()`,
    /// `a.cols() == b.rows()`.
    fn gemm_checked(
        &self,
        alpha: f64,
        a: OpRef<'_>,
        b: OpRef<'_>,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<()>;

    /// Backend name (for diagnostics and bench labels).
    fn name(&self) -> &'static str;

    /// Block size [`trsm`] should use when driven by this backend, or
    /// `None` for the unblocked reference solve.
    fn trsm_block(&self) -> Option<usize> {
        None
    }
}

/// Reference backend: the seed pipeline's loop orders.
///
/// * `(NoTrans, NoTrans)` — i-k-j with the inner loop streaming one row
///   of `B` (the old `mul_naive`/`sub_mul` order);
/// * `(NoTrans, Trans)` — four-way unrolled dot products over rows of `A`
///   and rows of the stored (transposed) `B` — the Section 6.3 layout
///   (the old `mul_transposed`/`sub_mul_transposed` order).
///
/// The end-to-end pipeline under this backend is bit-identical to the
/// pre-engine implementation.
pub struct Naive;

/// Equation 7 ablation backend: i-j-k with a stride-`n` read of the right
/// operand — "each read of an element from U2 will access a separate
/// memory page" (Section 6.3). Kept so the transpose-off ablation keeps
/// timing the access pattern the paper eliminates.
pub struct Strided;

/// Cache-tiled backend without packing: the old `mul_blocked` kernel.
pub struct Blocked {
    /// Tile edge length; must be positive.
    pub tile: usize,
}

/// The packed, register-blocked engine (see module docs).
pub struct Packed {
    /// Parallelize over macro-tile rows with rayon. Small products stay
    /// serial regardless (thread spawn would dominate).
    pub parallel: bool,
}

/// Selector for the process-wide default backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`Naive`].
    Naive,
    /// [`Strided`].
    Strided,
    /// [`Blocked`] with the default tile.
    Blocked,
    /// [`Packed`] with rayon enabled.
    Packed,
    /// [`Packed`] restricted to one thread.
    PackedSerial,
}

impl BackendKind {
    fn as_backend(self) -> &'static dyn GemmBackend {
        match self {
            BackendKind::Naive => &Naive,
            BackendKind::Strided => &Strided,
            BackendKind::Blocked => &Blocked { tile: 64 },
            BackendKind::Packed => &Packed { parallel: true },
            BackendKind::PackedSerial => &Packed { parallel: false },
        }
    }

    fn from_env() -> BackendKind {
        match std::env::var("MRINV_GEMM_BACKEND").as_deref() {
            Ok("naive") => BackendKind::Naive,
            Ok("strided") | Ok("eq7") => BackendKind::Strided,
            Ok("blocked") => BackendKind::Blocked,
            Ok("packed-serial") => BackendKind::PackedSerial,
            // Unrecognized values fall through to the tuned default.
            _ => BackendKind::Packed,
        }
    }

    fn encode(self) -> u8 {
        match self {
            BackendKind::Naive => 1,
            BackendKind::Strided => 2,
            BackendKind::Blocked => 3,
            BackendKind::Packed => 4,
            BackendKind::PackedSerial => 5,
        }
    }

    fn decode(v: u8) -> Option<BackendKind> {
        match v {
            1 => Some(BackendKind::Naive),
            2 => Some(BackendKind::Strided),
            3 => Some(BackendKind::Blocked),
            4 => Some(BackendKind::Packed),
            5 => Some(BackendKind::PackedSerial),
            _ => None,
        }
    }
}

/// 0 = uninitialized (read `MRINV_GEMM_BACKEND` on first use).
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

/// The process-wide default backend used by [`gemm`] and [`trsm`].
///
/// Initialized lazily from `MRINV_GEMM_BACKEND` (default: [`Packed`]).
pub fn global_backend() -> BackendKind {
    match BackendKind::decode(GLOBAL_BACKEND.load(Ordering::Relaxed)) {
        Some(kind) => kind,
        None => {
            let kind = BackendKind::from_env();
            GLOBAL_BACKEND.store(kind.encode(), Ordering::Relaxed);
            kind
        }
    }
}

/// Overrides the process-wide default backend, returning the previous
/// selection. Intended for differential tests and A/B debugging; racing
/// concurrent `gemm` calls see either backend.
pub fn set_global_backend(kind: BackendKind) -> BackendKind {
    let prev = global_backend();
    GLOBAL_BACKEND.store(kind.encode(), Ordering::Relaxed);
    prev
}

fn check_gemm(a: &OpRef<'_>, b: &OpRef<'_>, c: &Matrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (a.rows(), a.cols()),
            rhs: (b.rows(), b.cols()),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm(output)",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    Ok(())
}

/// `C := alpha * op(A) * op(B) + beta * C` through the process-wide
/// default backend (see [`global_backend`]).
///
/// `beta == 0.0` overwrites `C` without reading it (NaNs in `C` do not
/// propagate), matching BLAS convention.
///
/// ```
/// use mrinv_matrix::kernel::{gemm, notrans, trans};
/// use mrinv_matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
/// let mut c = Matrix::zeros(2, 2);
/// gemm(1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
/// assert_eq!(c[(0, 0)], 19.0);
/// // A·Bᵀ of the same data, accumulated on top:
/// gemm(1.0, notrans(&a), trans(&b), 1.0, &mut c).unwrap();
/// ```
pub fn gemm(alpha: f64, a: OpRef<'_>, b: OpRef<'_>, beta: f64, c: &mut Matrix) -> Result<()> {
    gemm_with(global_backend().as_backend(), alpha, a, b, beta, c)
}

/// [`gemm`] through an explicit backend.
pub fn gemm_with(
    backend: &dyn GemmBackend,
    alpha: f64,
    a: OpRef<'_>,
    b: OpRef<'_>,
    beta: f64,
    c: &mut Matrix,
) -> Result<()> {
    check_gemm(&a, &b, c)?;
    if !perf::is_enabled() {
        return backend.gemm_checked(alpha, a, b, beta, c);
    }
    let flops = gemm_flops(a.rows(), a.cols(), b.cols());
    let t0 = std::time::Instant::now();
    let out = backend.gemm_checked(alpha, a, b, beta, c);
    perf::record_gemm(backend.name(), flops, t0.elapsed());
    out
}

/// Allocating convenience: `op(A) * op(B)` through the default backend.
pub fn mul(a: OpRef<'_>, b: OpRef<'_>) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c)?;
    Ok(c)
}

/// Scales `c` by `beta` in place, treating `beta == 0.0` as overwrite.
pub(crate) fn scale_by_beta(c: &mut Matrix, beta: f64) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        for v in c.as_mut_slice() {
            *v = 0.0;
        }
    } else {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
}

/// Floating-point operation count of an `m x k` by `k x n` product
/// (one multiply and one add per inner step).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

#[cfg(test)]
mod tests;
