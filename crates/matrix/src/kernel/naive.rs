//! Reference backends: the seed pipeline's exact loop orders ([`Naive`]),
//! the Equation 7 strided ablation kernel ([`Strided`]), and the unpacked
//! cache-tiled middle rung ([`Blocked`]).
//!
//! [`Naive`] is the differential-testing oracle: its summation orders are
//! bit-identical to the pre-engine `mul_naive`/`mul_transposed`/`sub_mul*`
//! kernels for the `(alpha, beta)` pairs the pipeline uses (`(1, 0)` for a
//! fresh product, `(-1, 1)` for the fused subtract-update). That identity
//! relies only on IEEE-754 guarantees: `1.0 * x == x`, `-1.0 * x == -x`,
//! and `c + (-x) == c - x`, all bitwise.

use super::{scale_by_beta, GemmBackend, MatrixError, Op, OpRef, Result};
use crate::dense::Matrix;

/// Four-way unrolled dot product — the Section 6.3 inner kernel.
///
/// Lets LLVM vectorize without reassociation flags and reduces rounding
/// drift vs a single chain. The exact split (`(s0+s1)+(s2+s3)+tail`) is
/// part of the [`Naive`](super::Naive) backend's bit-identity contract.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4 * 4;
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let mut i = 0;
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < a.len() {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

impl GemmBackend for super::Naive {
    fn gemm_checked(
        &self,
        alpha: f64,
        a: OpRef<'_>,
        b: OpRef<'_>,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<()> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        scale_by_beta(c, beta);
        match (a.op, b.op) {
            (Op::NoTrans, Op::NoTrans) => {
                // i-k-j, inner loop streaming one row of B: the old
                // `mul_naive` (alpha = 1) / `sub_mul` (alpha = -1) order.
                for i in 0..m {
                    let arow = a.mat.row(i);
                    let crow = c.row_mut(i);
                    for (p, &apv) in arow.iter().enumerate().take(k) {
                        let s = alpha * apv;
                        let brow = b.mat.row(p);
                        for j in 0..n {
                            crow[j] += s * brow[j];
                        }
                    }
                }
            }
            (Op::NoTrans, Op::Trans) => {
                // Unrolled dot products over rows of A and rows of the
                // stored Bᵀ: the old `mul_transposed` / `sub_mul_transposed`
                // order (Section 6.3 layout).
                let assign = alpha == 1.0 && beta == 0.0;
                for i in 0..m {
                    let arow = a.mat.row(i);
                    let crow = c.row_mut(i);
                    for j in 0..n {
                        let d = dot(arow, b.mat.row(j));
                        if assign {
                            // Plain store, so a -0.0 dot survives (0.0 + -0.0
                            // would round it to +0.0).
                            crow[j] = d;
                        } else {
                            crow[j] += alpha * d;
                        }
                    }
                }
            }
            _ => {
                // Transposed-A shapes have no legacy counterpart; plain
                // i-k-j over logical elements.
                for i in 0..m {
                    let crow = c.row_mut(i);
                    for p in 0..k {
                        let s = alpha * a.at(i, p);
                        for j in 0..n {
                            crow[j] += s * b.at(p, j);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

impl GemmBackend for super::Strided {
    fn gemm_checked(
        &self,
        alpha: f64,
        a: OpRef<'_>,
        b: OpRef<'_>,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<()> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        scale_by_beta(c, beta);
        if (a.op, b.op) == (Op::NoTrans, Op::NoTrans) {
            // i-j-k with stride-n reads of B: Equation 7 verbatim (the old
            // `mul_ijk` / `sub_mul_ijk`).
            let b_data = b.mat.as_slice();
            let assign = alpha == 1.0 && beta == 0.0;
            for i in 0..m {
                let arow = a.mat.row(i);
                let crow = c.row_mut(i);
                for (j, cij) in crow.iter_mut().enumerate().take(n) {
                    let mut acc = 0.0;
                    for (p, &apv) in arow.iter().enumerate().take(k) {
                        acc += apv * b_data[p * n + j]; // stride-n access
                    }
                    if assign {
                        *cij = acc;
                    } else {
                        *cij += alpha * acc;
                    }
                }
            }
        } else {
            // The ablation only ever runs untransposed; other shapes get
            // the same i-j-k order over logical elements.
            let assign = alpha == 1.0 && beta == 0.0;
            for i in 0..m {
                let crow = c.row_mut(i);
                for (j, cij) in crow.iter_mut().enumerate().take(n) {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a.at(i, p) * b.at(p, j);
                    }
                    if assign {
                        *cij = acc;
                    } else {
                        *cij += alpha * acc;
                    }
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "strided"
    }
}

impl GemmBackend for super::Blocked {
    fn gemm_checked(
        &self,
        alpha: f64,
        a: OpRef<'_>,
        b: OpRef<'_>,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<()> {
        let tile = self.tile;
        if tile == 0 {
            return Err(MatrixError::InvalidParameter {
                op: "gemm(blocked)",
                what: "tile size must be positive, got 0",
            });
        }
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        scale_by_beta(c, beta);
        if (a.op, b.op) == (Op::NoTrans, Op::NoTrans) {
            // The old `mul_blocked` loop nest, with alpha folded into the
            // broadcast A element.
            for i0 in (0..m).step_by(tile) {
                let i1 = (i0 + tile).min(m);
                for p0 in (0..k).step_by(tile) {
                    let p1 = (p0 + tile).min(k);
                    for j0 in (0..n).step_by(tile) {
                        let j1 = (j0 + tile).min(n);
                        for i in i0..i1 {
                            let arow = a.mat.row(i);
                            let crow = c.row_mut(i);
                            for p in p0..p1 {
                                let s = alpha * arow[p];
                                let brow = b.mat.row(p);
                                for j in j0..j1 {
                                    crow[j] += s * brow[j];
                                }
                            }
                        }
                    }
                }
            }
        } else {
            for i0 in (0..m).step_by(tile) {
                let i1 = (i0 + tile).min(m);
                for p0 in (0..k).step_by(tile) {
                    let p1 = (p0 + tile).min(k);
                    for j0 in (0..n).step_by(tile) {
                        let j1 = (j0 + tile).min(n);
                        for i in i0..i1 {
                            let crow = c.row_mut(i);
                            for p in p0..p1 {
                                let s = alpha * a.at(i, p);
                                for j in j0..j1 {
                                    crow[j] += s * b.at(p, j);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "blocked"
    }
}
