//! Right-looking blocked LU with partial pivoting (LAPACK `dgetrf`
//! structure): factor an `nb`-wide column panel unblocked, solve the
//! matching row panel with [`trsm`](super::trsm), then rank-`nb` update
//! the trailing submatrix with one GEMM — which is where the packed
//! engine turns the `O(n^3)` of the factorization into level-3 work.
//!
//! Pivot choices match the unblocked Algorithm 1 exactly (each column is
//! fully updated before its pivot search, whether the updates arrived as
//! rank-1 steps or as one GEMM), so the permutation is the same; the
//! factor values differ only by the summation order of the trailing
//! updates.

use super::{gemm_with, notrans, trsm_with, Diag, GemmBackend, MatrixError, Result, Side, Uplo};
use crate::block::BlockRange;
use crate::dense::Matrix;
use crate::lu::LuFactors;
use crate::permutation::Permutation;

/// Blocked variant of [`crate::lu::lu_decompose`]: same packed-factor
/// layout and singularity threshold, trailing updates through `backend`.
pub fn lu_blocked(a: &Matrix, nb: usize, backend: &dyn GemmBackend) -> Result<LuFactors> {
    let mut lu = a.clone();
    let perm = lu_blocked_in_place(&mut lu, nb, backend)?;
    Ok(LuFactors { lu, perm })
}

/// In-place blocked LU: overwrites `a` with the packed factors and
/// returns the pivot permutation (`P·A = L·U`).
pub fn lu_blocked_in_place(
    a: &mut Matrix,
    nb: usize,
    backend: &dyn GemmBackend,
) -> Result<Permutation> {
    if nb == 0 {
        return Err(MatrixError::InvalidParameter {
            op: "lu_blocked",
            what: "panel width must be positive, got 0",
        });
    }
    let n = a.order()?;
    let mut perm = Permutation::identity(n);
    // Same relative singularity threshold as the unblocked routine.
    let scale = a.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let tol = if scale == 0.0 {
        f64::MIN_POSITIVE
    } else {
        scale * f64::EPSILON * n as f64
    };

    for k0 in (0..n).step_by(nb) {
        let k1 = (k0 + nb).min(n);

        // Panel factorization over full rows: swapping whole rows applies
        // the interchanges to the already-factored left columns and the
        // not-yet-updated right columns in the same motion, but the rank-1
        // elimination below touches only the panel's own columns — the
        // trailing block waits for the GEMM.
        for i in k0..k1 {
            let mut pivot_row = i;
            let mut pivot_val = a[(i, i)].abs();
            for j in (i + 1)..n {
                let v = a[(j, i)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = j;
                }
            }
            if pivot_val < tol {
                return Err(MatrixError::Singular { step: i });
            }
            if pivot_row != i {
                a.swap_rows(i, pivot_row);
                perm.swap(i, pivot_row);
            }

            let inv_pivot = 1.0 / a[(i, i)];
            for j in (i + 1)..n {
                a[(j, i)] *= inv_pivot;
            }
            let ncols = a.cols();
            for j in (i + 1)..n {
                let lji = a[(j, i)];
                if lji == 0.0 {
                    continue;
                }
                let (top, bottom) = a.as_mut_slice().split_at_mut(j * ncols);
                let urow = &top[i * ncols..i * ncols + ncols];
                let jrow = &mut bottom[..ncols];
                for k in (i + 1)..k1 {
                    jrow[k] -= lji * urow[k];
                }
            }
        }

        if k1 == n {
            break;
        }

        // U12 := L11^-1 · A12 (unit lower solve against the panel's
        // in-place factor; trsm only reads the lower triangle).
        let l11 = a.block(BlockRange::new((k0, k1), (k0, k1)))?;
        let mut u12 = a.block(BlockRange::new((k0, k1), (k1, n)))?;
        trsm_with(
            backend,
            Side::Left,
            Uplo::Lower,
            Diag::Unit,
            1.0,
            &l11,
            &mut u12,
        )?;
        a.set_block(k0, k1, &u12)?;

        // A22 -= L21 · U12: the rank-nb trailing update, all level-3.
        let l21 = a.block(BlockRange::new((k1, n), (k0, k1)))?;
        let mut a22 = a.block(BlockRange::new((k1, n), (k1, n)))?;
        gemm_with(backend, -1.0, notrans(&l21), notrans(&u12), 1.0, &mut a22)?;
        a.set_block(k1, k1, &a22)?;
    }
    Ok(perm)
}
