//! Per-backend kernel performance counters: calls, FLOPs, wall time, and
//! the packing-vs-microkernel time split.
//!
//! Off by default with the tracelog contract: every recording site is
//! gated on one relaxed [`AtomicBool`] load ([`is_enabled`]), and nothing
//! else runs when disabled — no `Instant::now`, no atomics. When enabled,
//! [`super::gemm_with`] times each call and credits `2·m·k·n` FLOPs to the
//! executing backend's slot, and the packed engine separately accumulates
//! the nanoseconds its workers spend in `pack_a`/`pack_b` — so a
//! [`snapshot`] exposes effective GFLOP/s per backend and how much of the
//! kernel's time went to data movement rather than the microkernel.
//!
//! Counters are process-wide (the kernel engine has no per-cluster state)
//! and use only `std` atomics, keeping this crate dependency-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Slot order for [`slot_index`]: the five [`super::GemmBackend::name`]
/// values plus a catch-all for out-of-tree backends.
const BACKEND_NAMES: [&str; 6] = [
    "naive",
    "strided",
    "blocked",
    "packed",
    "packed-serial",
    "other",
];

struct Slot {
    calls: AtomicU64,
    flops: AtomicU64,
    nanos: AtomicU64,
    pack_nanos: AtomicU64,
    par_calls: AtomicU64,
    fallback_calls: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            calls: AtomicU64::new(0),
            flops: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            pack_nanos: AtomicU64::new(0),
            par_calls: AtomicU64::new(0),
            fallback_calls: AtomicU64::new(0),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SLOTS: [Slot; 6] = [const { Slot::new() }; 6];

fn slot_index(backend: &str) -> usize {
    BACKEND_NAMES
        .iter()
        .position(|&n| n == backend)
        .unwrap_or(BACKEND_NAMES.len() - 1)
}

/// Turns recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether kernel perf counters are recording. One relaxed load — this is
/// the whole disabled-path cost, and recording sites must check it before
/// reading any clock.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Credits one GEMM call of `flops` floating-point operations taking
/// `elapsed` to `backend`'s slot. No-op when disabled.
pub fn record_gemm(backend: &str, flops: u64, elapsed: Duration) {
    if !is_enabled() {
        return;
    }
    let slot = &SLOTS[slot_index(backend)];
    slot.calls.fetch_add(1, Ordering::Relaxed);
    slot.flops.fetch_add(flops, Ordering::Relaxed);
    slot.nanos
        .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Accumulates packing time onto `backend`'s slot (summed across rayon
/// workers, so it can exceed the call's wall time on parallel backends).
/// No-op when disabled.
pub fn record_pack(backend: &str, elapsed: Duration) {
    if !is_enabled() {
        return;
    }
    SLOTS[slot_index(backend)]
        .pack_nanos
        .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Records which path a parallel-capable engine actually took for one
/// call: `parallel = false` means the engine *fell back* to its serial
/// loop (size gate, single-thread pool). Benches use this to refuse to
/// label a serial-fallback run as a parallel result. No-op when disabled.
pub fn record_packed_path(backend: &str, parallel: bool) {
    if !is_enabled() {
        return;
    }
    let slot = &SLOTS[slot_index(backend)];
    if parallel {
        slot.par_calls.fetch_add(1, Ordering::Relaxed);
    } else {
        slot.fallback_calls.fetch_add(1, Ordering::Relaxed);
    }
}

/// One backend's accumulated counters, as read by [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct BackendPerf {
    /// Backend name ([`super::GemmBackend::name`], or `"other"`).
    pub backend: &'static str,
    /// GEMM calls recorded.
    pub calls: u64,
    /// Floating-point operations credited (`2·m·k·n` per call).
    pub flops: u64,
    /// Wall-clock seconds inside [`super::gemm_with`].
    pub secs: f64,
    /// Worker seconds spent packing operand panels (0 for backends that
    /// do not pack).
    pub pack_secs: f64,
    /// Calls that executed the multi-threaded loop nest (only recorded by
    /// parallel-capable engines).
    pub par_calls: u64,
    /// Calls where a parallel-capable engine fell back to its serial loop
    /// (size below the crossover, or a single-thread pool).
    pub fallback_calls: u64,
}

impl BackendPerf {
    /// Effective throughput in GFLOP/s (0 when no time was recorded).
    pub fn gflops(&self) -> f64 {
        if self.secs > 0.0 {
            self.flops as f64 / self.secs / 1e9
        } else {
            0.0
        }
    }
}

/// Counters of every backend that recorded at least one call, in the
/// fixed backend-name order (naive, strided, blocked, packed,
/// packed-serial, other).
pub fn snapshot() -> Vec<BackendPerf> {
    BACKEND_NAMES
        .iter()
        .zip(SLOTS.iter())
        .filter_map(|(&backend, slot)| {
            let calls = slot.calls.load(Ordering::Relaxed);
            if calls == 0 {
                return None;
            }
            Some(BackendPerf {
                backend,
                calls,
                flops: slot.flops.load(Ordering::Relaxed),
                secs: slot.nanos.load(Ordering::Relaxed) as f64 / 1e9,
                pack_secs: slot.pack_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                par_calls: slot.par_calls.load(Ordering::Relaxed),
                fallback_calls: slot.fallback_calls.load(Ordering::Relaxed),
            })
        })
        .collect()
}

/// Zeroes every slot (the enabled flag is untouched).
pub fn reset() {
    for slot in &SLOTS {
        slot.calls.store(0, Ordering::Relaxed);
        slot.flops.store(0, Ordering::Relaxed);
        slot.nanos.store(0, Ordering::Relaxed);
        slot.pack_nanos.store(0, Ordering::Relaxed);
        slot.par_calls.store(0, Ordering::Relaxed);
        slot.fallback_calls.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialized via the global flag: these tests mutate process-wide
    /// state, so they run in one test to avoid interleaving.
    #[test]
    fn disabled_records_nothing_and_enabled_accumulates() {
        reset();
        assert!(!is_enabled());
        record_gemm("packed", 1000, Duration::from_millis(1));
        assert!(snapshot().is_empty(), "disabled recording must be a no-op");

        record_packed_path("packed", true);
        assert!(
            snapshot().is_empty(),
            "disabled path recording must be a no-op"
        );

        set_enabled(true);
        record_gemm("packed", 2_000_000_000, Duration::from_secs(1));
        record_gemm("packed", 2_000_000_000, Duration::from_secs(1));
        record_pack("packed", Duration::from_millis(250));
        record_packed_path("packed", true);
        record_packed_path("packed", true);
        record_packed_path("packed", false);
        record_gemm("made-up-backend", 10, Duration::from_millis(1));
        set_enabled(false);

        let snap = snapshot();
        let packed = snap.iter().find(|p| p.backend == "packed").unwrap();
        assert_eq!(packed.calls, 2);
        assert_eq!(packed.flops, 4_000_000_000);
        assert!((packed.secs - 2.0).abs() < 1e-9);
        assert!((packed.pack_secs - 0.25).abs() < 1e-9);
        assert!((packed.gflops() - 2.0).abs() < 1e-9);
        assert_eq!(packed.par_calls, 2);
        assert_eq!(packed.fallback_calls, 1);
        let other = snap.iter().find(|p| p.backend == "other").unwrap();
        assert_eq!(other.calls, 1);

        reset();
        assert!(snapshot().is_empty());
    }
}
