//! One-shot calibration autotuner for the packed GEMM engine.
//!
//! The paper hard-codes its MapReduce block size `nb` and the kernel used
//! to hard-code its cache-blocking constants; both are machine-dependent.
//! This module resolves the packed engine's parameters
//! ([`Params`]: MC/KC/NC and the serial/parallel crossover
//! `par_min_madds`) exactly once per process, from the `MRINV_GEMM_TUNE`
//! environment variable:
//!
//! | value                | behavior                                              |
//! |----------------------|-------------------------------------------------------|
//! | unset / `off` / `default` | compiled-in defaults (bit-identical to the seed) |
//! | `auto`               | quick timing probe at first kernel use                |
//! | `file:<path>`        | load cached spec; if missing/invalid, probe and save  |
//! | `mc=..,kc=..,nc=..,par=..` | explicit inline spec (any subset of keys)       |
//!
//! The probe ([`calibrate`]) times the real packed engine — serial runs
//! over an MC×KC grid at a fixed probe size, then (when the pool has more
//! than one thread) a crossover sweep that forces the parallel loop nest
//! on and finds the smallest problem where it beats serial. Probes call
//! the engine with explicit candidate parameters, never through
//! [`params`], so calibration cannot recurse into itself.
//!
//! **Numerical note:** KC determines how partial sums over `k` are
//! grouped, so non-default KC changes floating-point rounding (results
//! stay within the documented forward-error bound but are not bitwise
//! equal to the defaults). The compiled defaults therefore equal the
//! historical constants, keeping the default-environment pipeline
//! bit-identical across releases; tuned parameters are strictly opt-in.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use super::packed::{run_packed, MR, NR};
use super::{notrans, scale_by_beta};
use crate::dense::Matrix;

/// Packed-engine blocking parameters, resolved once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Macro-block rows (MC): rows of packed A per L2-resident slab.
    pub mc: usize,
    /// Macro-block depth (KC): k-extent of packed panels (L1 reuse).
    pub kc: usize,
    /// Macro-block columns (NC): outermost B panel width.
    pub nc: usize,
    /// Serial/parallel crossover in multiply-adds: products with
    /// `m·k·n` below this stay serial.
    pub par_min_madds: usize,
}

/// The compiled-in defaults — identical to the engine's historical
/// constants, so the default environment stays bit-identical to the seed.
pub const DEFAULT_PARAMS: Params = Params {
    mc: 64,
    kc: 256,
    nc: 4096,
    par_min_madds: 1 << 21,
};

const UNINIT: u8 = 0;
const INITING: u8 = 1;
const READY: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static MC_P: AtomicUsize = AtomicUsize::new(0);
static KC_P: AtomicUsize = AtomicUsize::new(0);
static NC_P: AtomicUsize = AtomicUsize::new(0);
static PAR_P: AtomicUsize = AtomicUsize::new(0);

/// The process-wide packed-engine parameters. First call resolves them
/// from `MRINV_GEMM_TUNE` (possibly running the calibration probe, which
/// takes on the order of 100ms for `auto`); later calls are four relaxed
/// atomic loads.
pub fn params() -> Params {
    if STATE.load(Ordering::Acquire) == READY {
        return load_params();
    }
    match STATE.compare_exchange(UNINIT, INITING, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => {
            let p = resolve_from_env();
            store_params(p);
            STATE.store(READY, Ordering::Release);
            p
        }
        Err(_) => {
            // Another thread is resolving (possibly probing); wait it out.
            while STATE.load(Ordering::Acquire) != READY {
                std::thread::yield_now();
            }
            load_params()
        }
    }
}

fn load_params() -> Params {
    Params {
        mc: MC_P.load(Ordering::Relaxed),
        kc: KC_P.load(Ordering::Relaxed),
        nc: NC_P.load(Ordering::Relaxed),
        par_min_madds: PAR_P.load(Ordering::Relaxed),
    }
}

fn store_params(p: Params) {
    MC_P.store(p.mc, Ordering::Relaxed);
    KC_P.store(p.kc, Ordering::Relaxed);
    NC_P.store(p.nc, Ordering::Relaxed);
    PAR_P.store(p.par_min_madds, Ordering::Relaxed);
}

fn resolve_from_env() -> Params {
    let spec = match std::env::var("MRINV_GEMM_TUNE") {
        Ok(s) => s,
        Err(_) => return DEFAULT_PARAMS,
    };
    let spec = spec.trim();
    match spec {
        "" | "off" | "default" => DEFAULT_PARAMS,
        "auto" => calibrate(&CalibrateOpts::quick()),
        _ => {
            if let Some(path) = spec.strip_prefix("file:") {
                return resolve_from_file(path);
            }
            match parse_spec(spec) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("mrinv: ignoring invalid MRINV_GEMM_TUNE ({e}); using defaults");
                    DEFAULT_PARAMS
                }
            }
        }
    }
}

fn resolve_from_file(path: &str) -> Params {
    if let Ok(text) = std::fs::read_to_string(path) {
        match parse_spec(text.trim()) {
            Ok(p) => return p,
            Err(e) => {
                eprintln!("mrinv: tune cache {path} invalid ({e}); re-probing");
            }
        }
    }
    let p = calibrate(&CalibrateOpts::quick());
    // Best-effort cache write: a read-only filesystem just means the probe
    // reruns next process.
    if let Err(e) = std::fs::write(path, format!("{}\n", format_spec(&p))) {
        eprintln!("mrinv: could not write tune cache {path}: {e}");
    }
    p
}

/// Parses the inline spec grammar (`mc=..,kc=..,nc=..,par=..`, any subset
/// of keys, unspecified keys keep their defaults). This is also the
/// `file:` cache format.
pub fn parse_spec(spec: &str) -> Result<Params, String> {
    let mut p = DEFAULT_PARAMS;
    for field in spec.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {field:?}"))?;
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("{}: not a number: {:?}", key.trim(), value.trim()))?;
        match key.trim() {
            "mc" => p.mc = value.clamp(MR, 1 << 14),
            "kc" => p.kc = value.clamp(8, 1 << 14),
            "nc" => p.nc = value.clamp(NR, 1 << 20),
            "par" => p.par_min_madds = value,
            other => return Err(format!("unknown key {other:?} (expected mc/kc/nc/par)")),
        }
    }
    Ok(p)
}

/// Formats `p` in the [`parse_spec`] grammar, suitable for
/// `MRINV_GEMM_TUNE` or a `file:` cache.
pub fn format_spec(p: &Params) -> String {
    format!(
        "mc={},kc={},nc={},par={}",
        p.mc, p.kc, p.nc, p.par_min_madds
    )
}

/// Probe effort knobs for [`calibrate`].
#[derive(Debug, Clone)]
pub struct CalibrateOpts {
    /// Square problem size the MC×KC grid is timed at.
    pub probe_n: usize,
    /// Timing repetitions per candidate (minimum is kept).
    pub reps: usize,
    /// Whether to sweep for the serial/parallel crossover (skipped
    /// automatically when the pool has a single thread).
    pub probe_crossover: bool,
}

impl CalibrateOpts {
    /// The first-use probe: small enough to finish in ~100ms-1s, large
    /// enough that L2-blocking differences show.
    pub fn quick() -> CalibrateOpts {
        CalibrateOpts {
            probe_n: 256,
            reps: 2,
            probe_crossover: true,
        }
    }

    /// A slower, steadier probe for the CLI (`mrinv tune`).
    pub fn thorough() -> CalibrateOpts {
        CalibrateOpts {
            probe_n: 384,
            reps: 3,
            probe_crossover: true,
        }
    }
}

/// Deterministic well-conditioned probe operand (no RNG dependency; the
/// values only need to defeat trivial constant-folding).
fn probe_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 31 + j * 17 + 3) % 97) as f64 / 97.0 - 0.5
    })
}

/// Times one engine run (serial or forced-parallel) with explicit
/// parameters; returns seconds.
fn time_run(p: &Params, parallel: bool, a: &Matrix, b: &Matrix, c: &mut Matrix) -> f64 {
    scale_by_beta(c, 0.0);
    let t = Instant::now();
    run_packed(p, parallel, "packed-serial", 1.0, notrans(a), notrans(b), c);
    t.elapsed().as_secs_f64()
}

fn best_time(p: &Params, parallel: bool, reps: usize, a: &Matrix, b: &Matrix) -> f64 {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(time_run(p, parallel, a, b, &mut c));
    }
    best
}

/// Runs the calibration probe and returns the winning parameters.
///
/// Grid-probes MC×KC serially at `probe_n`, then (multi-thread pools
/// only) sweeps problem sizes with the parallel loop nest forced on to
/// find the crossover where parallel first beats serial, setting
/// `par_min_madds` to that problem's multiply-add count. NC keeps its
/// default: it only matters beyond `n > NC` (4096), far above the probe
/// sizes, and probing there would cost seconds.
pub fn calibrate(opts: &CalibrateOpts) -> Params {
    let n = opts.probe_n.max(64);
    let a = probe_matrix(n, n);
    let b = probe_matrix(n, n);

    let mut best = DEFAULT_PARAMS;
    let mut best_t = f64::INFINITY;
    for &mc in &[32usize, 64, 96, 128] {
        for &kc in &[128usize, 256, 512] {
            let cand = Params {
                mc,
                kc,
                ..DEFAULT_PARAMS
            };
            let t = best_time(&cand, false, opts.reps, &a, &b);
            if t < best_t {
                best_t = t;
                best = cand;
            }
        }
    }

    if opts.probe_crossover && rayon::current_num_threads() > 1 {
        best.par_min_madds = probe_crossover(&best, opts.reps);
    }
    best
}

/// Smallest `m·k·n` where the forced-parallel nest beats serial by ≥5%;
/// falls back to the compiled default when parallel never wins in the
/// sweep (e.g. an oversubscribed or single-core machine).
fn probe_crossover(p: &Params, reps: usize) -> usize {
    for &nx in &[64usize, 96, 128, 192, 256, 320, 384] {
        let a = probe_matrix(nx, nx);
        let b = probe_matrix(nx, nx);
        let serial = best_time(p, false, reps, &a, &b);
        let par = best_time(p, true, reps, &a, &b);
        if par < serial * 0.95 {
            return nx * nx * nx;
        }
    }
    DEFAULT_PARAMS.par_min_madds
}

/// Probes serial packed throughput at candidate MapReduce block sizes and
/// recommends the smallest `nb` reaching ≥90% of the best observed
/// GFLOP/s. Returns `(recommended_nb, [(nb, gflops)])`.
///
/// Rationale (Ceccarello & Silvestri, arXiv:1408.2858): larger blocks cut
/// MapReduce rounds but inflate per-task work and memory; the kernel's
/// throughput saturates once `nb` covers the cache blocking, so the
/// smallest saturating block minimizes round-granularity loss for free.
pub fn recommend_nb(p: &Params, reps: usize) -> (usize, Vec<(usize, f64)>) {
    let mut curve = Vec::new();
    let mut best_gf = 0.0f64;
    for &nb in &[32usize, 64, 128, 256, 512] {
        let a = probe_matrix(nb, nb);
        let b = probe_matrix(nb, nb);
        let secs = best_time(p, false, reps, &a, &b);
        let gf = if secs > 0.0 {
            super::gemm_flops(nb, nb, nb) as f64 / secs / 1e9
        } else {
            0.0
        };
        best_gf = best_gf.max(gf);
        curve.push((nb, gf));
    }
    let rec = curve
        .iter()
        .find(|&&(_, gf)| gf >= 0.9 * best_gf)
        .map(|&(nb, _)| nb)
        .unwrap_or(DEFAULT_PARAMS.mc);
    (rec, curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip_and_partial_parse() {
        let p = Params {
            mc: 96,
            kc: 384,
            nc: 2048,
            par_min_madds: 123456,
        };
        assert_eq!(parse_spec(&format_spec(&p)).unwrap(), p);

        let partial = parse_spec("kc=512").unwrap();
        assert_eq!(partial.kc, 512);
        assert_eq!(partial.mc, DEFAULT_PARAMS.mc);
        assert_eq!(partial.nc, DEFAULT_PARAMS.nc);

        assert!(parse_spec("mc=abc").is_err());
        assert!(parse_spec("bogus=1").is_err());
        assert!(parse_spec("mc").is_err());
        // Clamping keeps hostile values runnable.
        assert_eq!(parse_spec("mc=0").unwrap().mc, MR);
        assert_eq!(parse_spec("kc=1").unwrap().kc, 8);
    }

    #[test]
    fn default_params_match_historical_constants() {
        // The bit-identity contract: unset env must reproduce the seed's
        // exact blocking, hence the seed's exact floating-point results.
        assert_eq!(
            DEFAULT_PARAMS,
            Params {
                mc: 64,
                kc: 256,
                nc: 4096,
                par_min_madds: 1 << 21
            }
        );
        let p = params();
        if std::env::var("MRINV_GEMM_TUNE").is_err() {
            assert_eq!(p, DEFAULT_PARAMS);
        }
    }

    #[test]
    fn calibrate_returns_runnable_params() {
        // A tiny probe (not the quick() profile) keeps this test fast
        // while still exercising the full grid machinery.
        let p = calibrate(&CalibrateOpts {
            probe_n: 64,
            reps: 1,
            probe_crossover: false,
        });
        assert!(p.mc >= MR && p.kc >= 8 && p.nc >= NR);
        // And the winner actually computes a correct product.
        let a = probe_matrix(33, 47);
        let b = probe_matrix(47, 21);
        let mut c = Matrix::zeros(33, 21);
        run_packed(
            &p,
            false,
            "packed-serial",
            1.0,
            notrans(&a),
            notrans(&b),
            &mut c,
        );
        let expect = crate::kernel::mul(notrans(&a), notrans(&b)).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn recommend_nb_returns_probed_point() {
        let (nb, curve) = recommend_nb(&DEFAULT_PARAMS, 1);
        assert!(curve.iter().any(|&(c_nb, _)| c_nb == nb));
        assert!(curve.iter().all(|&(_, gf)| gf >= 0.0));
    }
}
