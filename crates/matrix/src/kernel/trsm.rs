//! Triangular solve with multiple right-hand sides (BLAS `dtrsm`).
//!
//! `trsm(side, uplo, diag, alpha, T, B)` overwrites `B` with the solution
//! `X` of `T · X = alpha · B` ([`Side::Left`]) or `X · T = alpha · B`
//! ([`Side::Right`]).
//!
//! Small systems use unblocked forward/back substitution whose summation
//! order is bit-identical to the per-vector kernels the pipeline mappers
//! used before this module existed ([`crate::triangular`]); when the
//! active backend advertises a block size ([`GemmBackend::trsm_block`]),
//! larger systems are solved a diagonal block at a time with the trailing
//! update delegated to GEMM, which is where the packed engine's
//! throughput shows up.

use super::{gemm_with, notrans, Diag, GemmBackend, MatrixError, Result, Side, Uplo};
use crate::block::BlockRange;
use crate::dense::Matrix;

fn check_trsm(side: Side, t: &Matrix, b: &Matrix) -> Result<usize> {
    let n = t.order()?;
    let need = match side {
        Side::Left => b.rows(),
        Side::Right => b.cols(),
    };
    if need != n {
        return Err(MatrixError::DimensionMismatch {
            op: "trsm",
            lhs: t.shape(),
            rhs: b.shape(),
        });
    }
    Ok(n)
}

fn check_diag(t: &Matrix, diag: Diag) -> Result<()> {
    if diag == Diag::NonUnit {
        let n = t.rows();
        for i in 0..n {
            if t[(i, i)] == 0.0 {
                return Err(MatrixError::Singular { step: i });
            }
        }
    }
    Ok(())
}

/// Solves `T · X = B` / `X · T = B` in place through the process-wide
/// default backend (`alpha` is applied to `B` first).
///
/// `T` is read only on the triangle selected by `uplo` (plus the diagonal
/// when `diag` is [`Diag::NonUnit`]); the opposite triangle may hold
/// anything — packed LU factors can be used directly.
pub fn trsm(
    side: Side,
    uplo: Uplo,
    diag: Diag,
    alpha: f64,
    t: &Matrix,
    b: &mut Matrix,
) -> Result<()> {
    trsm_with(
        super::global_backend().as_backend(),
        side,
        uplo,
        diag,
        alpha,
        t,
        b,
    )
}

/// [`trsm`] through an explicit backend.
pub fn trsm_with(
    backend: &dyn GemmBackend,
    side: Side,
    uplo: Uplo,
    diag: Diag,
    alpha: f64,
    t: &Matrix,
    b: &mut Matrix,
) -> Result<()> {
    let n = check_trsm(side, t, b)?;
    check_diag(t, diag)?;
    if alpha != 1.0 {
        for v in b.as_mut_slice() {
            *v *= alpha;
        }
    }
    match backend.trsm_block() {
        Some(nb) if n > nb => blocked(backend, side, uplo, diag, nb, t, b),
        _ => {
            unblocked(side, uplo, diag, t, b);
            Ok(())
        }
    }
}

/// Diagonal-block recursion: solve an `nb`-wide stripe unblocked, then
/// clear its coupling to the remaining stripes with one GEMM.
fn blocked(
    backend: &dyn GemmBackend,
    side: Side,
    uplo: Uplo,
    diag: Diag,
    nb: usize,
    t: &Matrix,
    b: &mut Matrix,
) -> Result<()> {
    let n = t.rows();
    // Iterate diagonal blocks in dependency order: forward for the
    // triangle whose solve starts at index 0, backward otherwise.
    let forward = matches!(
        (side, uplo),
        (Side::Left, Uplo::Lower) | (Side::Right, Uplo::Upper)
    );
    let starts: Vec<usize> = (0..n).step_by(nb).collect();
    let order: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(starts.into_iter())
    } else {
        Box::new(starts.into_iter().rev())
    };

    for k0 in order {
        let k1 = (k0 + nb).min(n);
        let tkk = t.block(BlockRange::new((k0, k1), (k0, k1)))?;
        match side {
            Side::Left => {
                let mut xk = b.row_stripe(k0, k1)?;
                unblocked(side, uplo, diag, &tkk, &mut xk);
                // Remaining rows: B_r -= T[r, k] · X_k.
                let (r0, r1) = if forward { (k1, n) } else { (0, k0) };
                if r0 < r1 {
                    let trk = t.block(BlockRange::new((r0, r1), (k0, k1)))?;
                    let mut br = b.row_stripe(r0, r1)?;
                    gemm_with(backend, -1.0, notrans(&trk), notrans(&xk), 1.0, &mut br)?;
                    b.set_block(r0, 0, &br)?;
                }
                b.set_block(k0, 0, &xk)?;
            }
            Side::Right => {
                let mut xk = b.col_stripe(k0, k1)?;
                unblocked(side, uplo, diag, &tkk, &mut xk);
                // Remaining columns: B_r -= X_k · T[k, r].
                let (r0, r1) = if forward { (k1, n) } else { (0, k0) };
                if r0 < r1 {
                    let tkr = t.block(BlockRange::new((k0, k1), (r0, r1)))?;
                    let mut br = b.col_stripe(r0, r1)?;
                    gemm_with(backend, -1.0, notrans(&xk), notrans(&tkr), 1.0, &mut br)?;
                    b.set_block(0, r0, &br)?;
                }
                b.set_block(0, k0, &xk)?;
            }
        }
    }
    Ok(())
}

fn unblocked(side: Side, uplo: Uplo, diag: Diag, t: &Matrix, b: &mut Matrix) {
    match side {
        Side::Left => {
            // Column-at-a-time substitution, like the pipeline's
            // per-column mapper kernels: gather the (strided) column,
            // solve it contiguously, scatter back.
            let n = t.rows();
            let cols = b.cols();
            let mut x = vec![0.0; n];
            for j in 0..cols {
                for i in 0..n {
                    x[i] = b[(i, j)];
                }
                match uplo {
                    Uplo::Lower => solve_lower_col(t, diag, &mut x),
                    Uplo::Upper => solve_upper_col(t, diag, &mut x),
                }
                for i in 0..n {
                    b[(i, j)] = x[i];
                }
            }
        }
        Side::Right => {
            // Row-at-a-time: X·T = B row i is Tᵀ·xᵀ = bᵀ, a substitution
            // against the transposed factor. Transposing T once keeps every
            // inner access row-major (the Section 6.3 trick; this is
            // exactly the old `solve_upper_system_right` arithmetic).
            let t_t = t.transpose();
            let rows = b.rows();
            for i in 0..rows {
                let x = b.row_mut(i);
                match uplo {
                    // Right-solve against upper T == lower solve against Tᵀ.
                    Uplo::Upper => solve_lower_row_transposed(&t_t, diag, x),
                    Uplo::Lower => solve_upper_row_transposed(&t_t, diag, x),
                }
            }
        }
    }
}

/// Forward substitution `T·x = b` in place (lower triangle).
///
/// An exact-`+0.0` prefix of the RHS is skipped rather than divided: the
/// corresponding solution entries are exactly `+0.0`, and dividing would
/// turn them into `-0.0` under a negative diagonal. The pipeline solves
/// unit-basis columns constantly (triangular inversion), and the skip both
/// preserves the seed kernels' bit pattern above the diagonal and restores
/// their `O((n-j)^2)` cost per inverse column.
fn solve_lower_col(t: &Matrix, diag: Diag, x: &mut [f64]) {
    let n = x.len();
    let mut start = 0;
    while start < n && x[start].to_bits() == 0 {
        start += 1;
    }
    for i in start..n {
        let row = t.row(i);
        let mut acc = x[i];
        for (k, &xk) in x.iter().enumerate().take(i).skip(start) {
            acc -= row[k] * xk;
        }
        x[i] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc / row[i],
        };
    }
}

/// Back substitution `T·x = b` in place (upper triangle), with the
/// mirrored trailing-zero skip.
fn solve_upper_col(t: &Matrix, diag: Diag, x: &mut [f64]) {
    let n = x.len();
    let mut end = n;
    while end > 0 && x[end - 1].to_bits() == 0 {
        end -= 1;
    }
    for i in (0..end).rev() {
        let row = t.row(i);
        let mut acc = x[i];
        for k in (i + 1)..end {
            acc -= row[k] * x[k];
        }
        x[i] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc / row[i],
        };
    }
}

/// Solves `x · T = b` for upper-triangular `T` given `t_t = Tᵀ` (lower
/// triangular), overwriting `x` (which holds `b` on entry). This is the
/// old `solve_row_times_upper_transposed` summation order.
fn solve_lower_row_transposed(t_t: &Matrix, diag: Diag, x: &mut [f64]) {
    let n = x.len();
    let mut start = 0;
    while start < n && x[start].to_bits() == 0 {
        start += 1;
    }
    for j in start..n {
        let row = t_t.row(j);
        let mut acc = x[j];
        for (k, &xk) in x.iter().enumerate().take(j).skip(start) {
            acc -= xk * row[k];
        }
        x[j] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc / row[j],
        };
    }
}

/// Solves `x · T = b` for lower-triangular `T` given `t_t = Tᵀ` (upper
/// triangular), overwriting `x`.
fn solve_upper_row_transposed(t_t: &Matrix, diag: Diag, x: &mut [f64]) {
    let n = x.len();
    let mut end = n;
    while end > 0 && x[end - 1].to_bits() == 0 {
        end -= 1;
    }
    for j in (0..end).rev() {
        let row = t_t.row(j);
        let mut acc = x[j];
        for k in (j + 1)..end {
            acc -= x[k] * row[k];
        }
        x[j] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc / row[j],
        };
    }
}
