use super::*;
use crate::random::{random_matrix, random_unit_lower, random_upper};
use crate::triangular;

const TOL: f64 = 1e-9;

fn backends() -> Vec<(&'static str, Box<dyn GemmBackend>)> {
    vec![
        ("naive", Box::new(Naive)),
        ("strided", Box::new(Strided)),
        ("blocked", Box::new(Blocked { tile: 48 })),
        ("packed-serial", Box::new(Packed { parallel: false })),
        ("packed", Box::new(Packed { parallel: true })),
    ]
}

#[test]
fn all_backends_agree_all_ops() {
    // Ragged shapes straddling the MR/NR/MC/KC edges.
    let (m, k, n) = (67, 35, 41);
    let a = random_matrix(m, k, 1);
    let a_t = a.transpose();
    let b = random_matrix(k, n, 2);
    let b_t = b.transpose();
    let c0 = random_matrix(m, n, 3);

    let mut reference = c0.clone();
    gemm_with(&Naive, 0.5, notrans(&a), notrans(&b), -2.0, &mut reference).unwrap();

    for (name, backend) in backends() {
        for (label, aref, bref) in [
            ("nn", notrans(&a), notrans(&b)),
            ("nt", notrans(&a), trans(&b_t)),
            ("tn", trans(&a_t), notrans(&b)),
            ("tt", trans(&a_t), trans(&b_t)),
        ] {
            let mut c = c0.clone();
            gemm_with(backend.as_ref(), 0.5, aref, bref, -2.0, &mut c).unwrap();
            assert!(
                c.approx_eq(&reference, TOL),
                "{name}/{label} disagrees with reference"
            );
        }
    }
}

#[test]
fn packed_parallel_nest_is_bitwise_identical_to_serial() {
    // The re-grained parallel path distributes (row-tile × column-range)
    // work items but accumulates every C element's pc-partial sums in the
    // serial nest's order with the same microkernel — so results must be
    // bit-for-bit equal at any thread cap, including ragged and
    // wide-but-short shapes the old `m > MC` gate used to exclude.
    let p = tune::DEFAULT_PARAMS;
    for (m, k, n, seed) in [
        (3usize, 5usize, 9usize, 30u64), // m ≤ MR
        (32, 300, 512, 31),              // wide-short: one row tile
        (513, 64, 33, 32),               // tall-skinny
        (130, 257, 129, 33),             // ragged across MC/KC edges
    ] {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 100);
        let c0 = random_matrix(m, n, seed + 200);

        let mut serial = c0.clone();
        scale_by_beta(&mut serial, 0.5);
        packed::run_packed(
            &p,
            false,
            "packed-serial",
            1.5,
            notrans(&a),
            notrans(&b),
            &mut serial,
        );

        for cap in [1usize, 2, usize::MAX] {
            let prev = rayon::set_thread_cap(cap);
            let mut par = c0.clone();
            scale_by_beta(&mut par, 0.5);
            packed::run_packed(&p, true, "packed", 1.5, notrans(&a), notrans(&b), &mut par);
            rayon::set_thread_cap(prev);
            assert_eq!(
                par, serial,
                "parallel nest must be bitwise serial at cap={cap} ({m}x{k}x{n})"
            );
        }

        // Transposed operands flow through the same packing; spot-check.
        let a_t = a.transpose();
        let b_t = b.transpose();
        let mut serial_tt = c0.clone();
        packed::run_packed(
            &p,
            false,
            "packed-serial",
            -1.0,
            trans(&a_t),
            trans(&b_t),
            &mut serial_tt,
        );
        let mut par_tt = c0.clone();
        packed::run_packed(
            &p,
            true,
            "packed",
            -1.0,
            trans(&a_t),
            trans(&b_t),
            &mut par_tt,
        );
        assert_eq!(par_tt, serial_tt, "tt parallel nest must be bitwise serial");
    }
}

#[test]
fn naive_backend_is_bit_identical_to_legacy_kernels() {
    let a = random_matrix(23, 17, 4);
    let b = random_matrix(17, 29, 5);
    let c0 = random_matrix(23, 29, 6);

    // Reference: the pre-engine mul_naive i-k-j accumulation order.
    let mut legacy = Matrix::zeros(23, 29);
    for i in 0..23 {
        for p in 0..17 {
            let apv = a[(i, p)];
            for j in 0..29 {
                legacy[(i, j)] += apv * b[(p, j)];
            }
        }
    }
    let mut c = Matrix::zeros(23, 29);
    gemm_with(&Naive, 1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
    assert_eq!(c, legacy, "fresh product must match mul_naive bitwise");

    let mut c = c0.clone();
    gemm_with(&Naive, -1.0, notrans(&a), notrans(&b), 1.0, &mut c).unwrap();
    let mut expect = c0.clone();
    for i in 0..23 {
        for j in 0..29 {
            // Reference: the old sub_mul accumulation order.
            for p in 0..17 {
                expect[(i, j)] -= a[(i, p)] * b[(p, j)];
            }
        }
    }
    // Same i-k-j order as sub_mul; compare against a literal re-execution.
    let mut c2 = c0.clone();
    for i in 0..23 {
        for p in 0..17 {
            let apv = a[(i, p)];
            for j in 0..29 {
                c2[(i, j)] -= apv * b[(p, j)];
            }
        }
    }
    assert_eq!(c, c2, "fused subtract must match sub_mul bitwise");

    // Dot path: mul_transposed / sub_mul_transposed.
    let b_t = b.transpose();
    let mut c = Matrix::zeros(23, 29);
    gemm_with(&Naive, 1.0, notrans(&a), trans(&b_t), 0.0, &mut c).unwrap();
    let mut expect = Matrix::zeros(23, 29);
    for i in 0..23 {
        for j in 0..29 {
            expect[(i, j)] = dot(a.row(i), b_t.row(j));
        }
    }
    assert_eq!(c, expect, "dot path must match mul_transposed bitwise");

    let mut c = c0.clone();
    gemm_with(&Naive, -1.0, notrans(&a), trans(&b_t), 1.0, &mut c).unwrap();
    let mut expect = c0.clone();
    for i in 0..23 {
        for j in 0..29 {
            expect[(i, j)] -= dot(a.row(i), b_t.row(j));
        }
    }
    assert_eq!(c, expect, "fused dot subtract must match bitwise");
}

#[test]
fn strided_backend_is_bit_identical_to_eq7_kernels() {
    let a = random_matrix(13, 19, 7);
    let b = random_matrix(19, 11, 8);
    let c0 = random_matrix(13, 11, 9);

    let mut c = Matrix::zeros(13, 11);
    gemm_with(&Strided, 1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
    let mut expect = Matrix::zeros(13, 11);
    let bd = b.as_slice();
    for i in 0..13 {
        for j in 0..11 {
            let mut acc = 0.0;
            for p in 0..19 {
                acc += a[(i, p)] * bd[p * 11 + j];
            }
            expect[(i, j)] = acc;
        }
    }
    assert_eq!(c, expect, "must match mul_ijk bitwise");

    let mut c = c0.clone();
    gemm_with(&Strided, -1.0, notrans(&a), notrans(&b), 1.0, &mut c).unwrap();
    let mut expect = c0.clone();
    for i in 0..13 {
        for j in 0..11 {
            let mut acc = 0.0;
            for p in 0..19 {
                acc += a[(i, p)] * bd[p * 11 + j];
            }
            expect[(i, j)] -= acc;
        }
    }
    assert_eq!(c, expect, "must match sub_mul_ijk bitwise");
}

#[test]
fn beta_zero_overwrites_nan() {
    let a = random_matrix(9, 9, 10);
    let b = random_matrix(9, 9, 11);
    for (_, backend) in backends() {
        let mut c = Matrix::filled(9, 9, f64::NAN);
        gemm_with(backend.as_ref(), 1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn shape_mismatches_rejected() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(4, 2);
    let mut c = Matrix::zeros(2, 2);
    assert!(gemm(1.0, notrans(&a), notrans(&b), 0.0, &mut c).is_err());
    let b = Matrix::zeros(3, 5);
    assert!(gemm(1.0, notrans(&a), notrans(&b), 0.0, &mut c).is_err());
    // Transposed logical shapes are what must line up: Aᵀ·Aᵀ of a 2x3 is
    // 3x2 · 3x2 — invalid — while Aᵀ·A is fine.
    let mut c = Matrix::zeros(3, 3);
    assert!(gemm(1.0, trans(&a), trans(&a.clone()), 0.0, &mut c).is_err());
    assert!(gemm(1.0, trans(&a), notrans(&a.clone()), 0.0, &mut c).is_ok());
}

#[test]
fn blocked_zero_tile_is_typed_error() {
    let a = random_matrix(4, 4, 12);
    let mut c = Matrix::zeros(4, 4);
    let err = gemm_with(
        &Blocked { tile: 0 },
        1.0,
        notrans(&a),
        notrans(&a),
        0.0,
        &mut c,
    )
    .unwrap_err();
    assert!(matches!(err, MatrixError::InvalidParameter { .. }));
}

#[test]
fn empty_and_degenerate_products() {
    for (_, backend) in backends() {
        let a = Matrix::zeros(0, 0);
        let mut c = Matrix::zeros(0, 0);
        gemm_with(backend.as_ref(), 1.0, notrans(&a), notrans(&a), 0.0, &mut c).unwrap();
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(3, 2, 7.0);
        gemm_with(backend.as_ref(), 1.0, notrans(&a), notrans(&b), 0.0, &mut c).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn trsm_left_lower_matches_legacy_per_column_kernels() {
    let n = 12;
    let l = random_unit_lower(n, 13);
    // Unit solve against a general RHS: bit-identical to the old
    // column-at-a-time solve_unit_lower_system.
    let rhs = random_matrix(n, 7, 14);
    let mut x = rhs.clone();
    trsm_with(&Naive, Side::Left, Uplo::Lower, Diag::Unit, 1.0, &l, &mut x).unwrap();
    let expect = triangular::solve_unit_lower_system(&l, &rhs).unwrap();
    assert_eq!(x, expect);

    // Non-unit solve of the identity: bit-identical to column-wise
    // invert_lower_column (including exact +0.0 above each diagonal).
    let mut lnu = l.clone();
    for i in 0..n {
        lnu[(i, i)] = 1.5 + i as f64 * 0.25;
    }
    let mut x = Matrix::identity(n);
    trsm_with(
        &Naive,
        Side::Left,
        Uplo::Lower,
        Diag::NonUnit,
        1.0,
        &lnu,
        &mut x,
    )
    .unwrap();
    let expect = triangular::invert_lower(&lnu).unwrap();
    assert_eq!(x, expect);
}

#[test]
fn trsm_right_upper_matches_legacy_row_kernel() {
    let n = 12;
    let u = random_upper(n, 15);
    let rhs = random_matrix(5, n, 16);
    let mut x = rhs.clone();
    trsm_with(
        &Naive,
        Side::Right,
        Uplo::Upper,
        Diag::NonUnit,
        1.0,
        &u,
        &mut x,
    )
    .unwrap();
    let expect = triangular::solve_upper_system_right(&u, &rhs).unwrap();
    assert_eq!(x, expect);
}

#[test]
fn trsm_all_combinations_solve_their_equation() {
    let n = 37; // > nb for the packed backend's blocked path
    let lower = {
        let mut l = random_unit_lower(n, 17);
        for i in 0..n {
            l[(i, i)] = 2.0 + (i % 5) as f64;
        }
        l
    };
    let upper = lower.transpose();
    let packed = Packed { parallel: false };
    for diag in [Diag::Unit, Diag::NonUnit] {
        for (side, uplo, t) in [
            (Side::Left, Uplo::Lower, &lower),
            (Side::Left, Uplo::Upper, &upper),
            (Side::Right, Uplo::Lower, &lower),
            (Side::Right, Uplo::Upper, &upper),
        ] {
            let b = match side {
                Side::Left => random_matrix(n, 9, 18),
                Side::Right => random_matrix(9, n, 19),
            };
            for backend in [&Naive as &dyn GemmBackend, &packed] {
                let mut x = b.clone();
                trsm_with(backend, side, uplo, diag, 2.0, t, &mut x).unwrap();
                // Rebuild alpha*B from X and the triangle trsm actually read.
                let mut teff = t.clone();
                for i in 0..n {
                    for j in 0..n {
                        let keep = match uplo {
                            Uplo::Lower => j <= i,
                            Uplo::Upper => j >= i,
                        };
                        if !keep {
                            teff[(i, j)] = 0.0;
                        }
                        if diag == Diag::Unit && i == j {
                            teff[(i, j)] = 1.0;
                        }
                    }
                }
                let recovered = match side {
                    Side::Left => mul(notrans(&teff), notrans(&x)).unwrap(),
                    Side::Right => mul(notrans(&x), notrans(&teff)).unwrap(),
                };
                let mut scaled = b.clone();
                for v in scaled.as_mut_slice() {
                    *v *= 2.0;
                }
                assert!(
                    recovered.approx_eq(&scaled, 1e-7),
                    "{side:?}/{uplo:?}/{diag:?}/{} failed",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn trsm_rejects_singular_and_misshapen() {
    let mut l = random_unit_lower(5, 20);
    l[(2, 2)] = 0.0;
    let mut b = Matrix::zeros(5, 2);
    assert!(matches!(
        trsm(Side::Left, Uplo::Lower, Diag::NonUnit, 1.0, &l, &mut b),
        Err(MatrixError::Singular { step: 2 })
    ));
    // Unit diag never reads the diagonal, so the same matrix is fine.
    assert!(trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, &l, &mut b).is_ok());
    let mut b = Matrix::zeros(4, 2);
    assert!(trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, &l, &mut b).is_err());
    assert!(trsm(Side::Right, Uplo::Lower, Diag::Unit, 1.0, &l, &mut b).is_err());
}

#[test]
fn blocked_lu_matches_unblocked_permutation_and_reconstructs() {
    use crate::lu::lu_decompose;
    for n in [10, 64, 97] {
        let a = random_matrix(n, n, 21 + n as u64);
        let unblocked = lu_decompose(&a).unwrap();
        for backend in [&Naive as &dyn GemmBackend, &Packed { parallel: false }] {
            let f = lu_blocked(&a, 16, backend).unwrap();
            assert_eq!(f.perm, unblocked.perm, "pivot choices must agree at n={n}");
            let pa = f.perm.apply_rows(&a);
            assert!(f.reconstruct().approx_eq(&pa, 1e-8), "PA != LU at n={n}");
            assert!(f.lu.approx_eq(&unblocked.lu, 1e-8));
        }
    }
}

#[test]
fn blocked_lu_detects_singularity_and_bad_nb() {
    let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
    assert!(matches!(
        lu_blocked(&a, 2, &Naive),
        Err(MatrixError::Singular { .. })
    ));
    let b = random_matrix(4, 4, 22);
    assert!(matches!(
        lu_blocked(&b, 0, &Naive),
        Err(MatrixError::InvalidParameter { .. })
    ));
}

#[test]
fn global_backend_roundtrip() {
    let prev = set_global_backend(BackendKind::Naive);
    assert_eq!(global_backend(), BackendKind::Naive);
    let a = random_matrix(6, 6, 23);
    let mut c = Matrix::zeros(6, 6);
    gemm(1.0, notrans(&a), notrans(&a), 0.0, &mut c).unwrap();
    set_global_backend(prev);
}

#[test]
fn opref_logical_shapes() {
    let a = Matrix::zeros(3, 5);
    assert_eq!((notrans(&a).rows(), notrans(&a).cols()), (3, 5));
    assert_eq!((trans(&a).rows(), trans(&a).cols()), (5, 3));
}

#[test]
fn gemm_flops_counts_two_per_madd() {
    assert_eq!(gemm_flops(2, 3, 4), 48);
    assert_eq!(gemm_flops(0, 3, 4), 0);
}
