//! The packed, cache-blocked GEMM engine.
//!
//! Standard BLIS-style structure with three levels of blocking:
//!
//! ```text
//! for jc in 0..n step NC          // B macro-panel   (L3 / whole matrix)
//!   for pc in 0..k step KC        // pack B[pc.., jc..] into NR-wide panels (L2)
//!     for ic in 0..m step MC      // pack A[ic.., pc..] into MR-tall panels (L1)
//!       for jr in 0..nc step NR   // micro-panel of packed B
//!         for ir in 0..mc step MR // micro-panel of packed A
//!           MR x NR register-tiled microkernel over kc
//! ```
//!
//! Packing rewrites both operands so the microkernel reads two contiguous
//! streams (`MR` A-values and `NR` B-values per k-step) regardless of the
//! original layout or transposition — the transposed operand costs one
//! strided pass during packing, `O(m·k)`, instead of a strided access in
//! the `O(m·k·n)` inner loop. Edge tiles are zero-padded in the packed
//! buffers, so the microkernel never branches on ragged shapes.
//!
//! The microkernel keeps an `MR x NR = 4 x 8` f64 accumulator block in
//! registers (8 YMM registers under AVX2) and is compiled twice: once
//! portably and once with `#[target_feature(enable = "avx2", "fma")]`;
//! the FMA variant is selected per-call by cached CPUID detection.
//!
//! `beta` is applied to `C` once up front; the k-blocks then accumulate
//! with `+=`, and `alpha` is folded into the accumulator write-out.
//!
//! MC/KC/NC and the serial/parallel crossover are no longer compile-time
//! constants: they come from [`super::tune::params`], which defaults to
//! the historical values and can be overridden or auto-probed via
//! `MRINV_GEMM_TUNE`.
//!
//! With `parallel = true` and a multi-thread pool, the `ic` loop (and for
//! wide-but-short operands the `jr` loop too) fans out across the
//! persistent rayon pool: for each `(jc, pc)` iteration, B is packed once
//! and shared read-only, then work items covering disjoint
//! `(row-tile × column-range)` tiles of `C` run in parallel, each packing
//! its A tile into a thread-local buffer. Every `C` element still receives
//! its `pc`-partial sums in the same order as the serial nest, and each
//! partial sum is computed by the identical microkernel loop — so the
//! parallel path is **bitwise identical** to the serial path, regardless
//! of thread count or tile distribution. Products below the crossover
//! (`par_min_madds`) stay serial.

use std::cell::RefCell;

use rayon::prelude::*;

use super::tune::Params;
use super::{scale_by_beta, GemmBackend, Op, OpRef, Result};
use crate::dense::Matrix;

/// Microkernel tile height (rows of C per register block).
pub(super) const MR: usize = 4;
/// Microkernel tile width (columns of C per register block).
pub(super) const NR: usize = 8;

#[cfg(target_arch = "x86_64")]
mod cpu {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unknown, 1 = no, 2 = yes.
    static AVX2_FMA: AtomicU8 = AtomicU8::new(0);

    pub fn avx2_fma_available() -> bool {
        match AVX2_FMA.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma");
                AVX2_FMA.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
        }
    }
}

/// The microkernel body: accumulates an MR x NR block over `kc` steps.
///
/// `ap` is `kc` groups of MR contiguous A values; `bp` is `kc` groups of
/// NR contiguous B values. `chunks_exact` gives LLVM compile-time-known
/// slice lengths, so the 32 accumulators stay in registers with no
/// bounds checks in the loop.
#[inline(always)]
fn micro_body(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = a[r];
            for (j, accj) in acc[r].iter_mut().enumerate() {
                *accj += ar * b[j];
            }
        }
    }
}

/// Portable instantiation (baseline target features, SSE2 on x86-64).
fn micro_generic(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    micro_body(ap, bp, acc);
}

/// AVX2+FMA instantiation: same body, compiled with 256-bit registers and
/// fused multiply-add available, which is what lets the 4x8 accumulator
/// block live entirely in YMM registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn micro_avx2(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    micro_body(ap, bp, acc);
}

#[inline]
fn micro_dispatch(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2_fma_available() {
        // SAFETY: calling a #[target_feature(avx2,fma)] function is sound
        // because the cached is_x86_feature_detected! probe above confirmed
        // the CPU supports both features at runtime.
        unsafe { micro_avx2(ap, bp, acc) };
        return;
    }
    micro_generic(ap, bp, acc);
}

/// Packs the `mc x kc` block of `op(A)` with top-left logical corner
/// `(ic, pc)` into MR-row panels: panel `r` holds logical rows
/// `ic + r*MR ..`, laid out k-major (`kc` groups of MR values). Rows past
/// `mc` are zero-padded.
fn pack_a(a: OpRef<'_>, ic: usize, mc: usize, pc: usize, kc: usize, buf: &mut [f64]) {
    debug_assert_eq!(buf.len(), mc.div_ceil(MR) * MR * kc);
    for (panel, chunk) in buf.chunks_exact_mut(MR * kc).enumerate() {
        let r0 = ic + panel * MR;
        let live = MR.min(ic + mc - r0);
        match a.op {
            Op::NoTrans => {
                // Rows of the stored matrix stream; writes stride by MR.
                for r in 0..live {
                    let row = &a.mat.row(r0 + r)[pc..pc + kc];
                    for (p, &v) in row.iter().enumerate() {
                        chunk[p * MR + r] = v;
                    }
                }
            }
            Op::Trans => {
                // Logical row r is stored column r: for each stored row p,
                // both the read (row[r0..]) and the write (p*MR..) are
                // contiguous.
                for p in 0..kc {
                    let row = &a.mat.row(pc + p)[r0..r0 + live];
                    chunk[p * MR..p * MR + live].copy_from_slice(row);
                }
            }
        }
        if live < MR {
            for p in 0..kc {
                for r in live..MR {
                    chunk[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `op(B)` with top-left logical corner
/// `(pc, jc)` into NR-column panels, k-major (`kc` groups of NR values).
/// Columns past `nc` are zero-padded.
fn pack_b(b: OpRef<'_>, pc: usize, kc: usize, jc: usize, nc: usize, buf: &mut [f64]) {
    debug_assert_eq!(buf.len(), nc.div_ceil(NR) * NR * kc);
    for (panel, chunk) in buf.chunks_exact_mut(NR * kc).enumerate() {
        let j0 = jc + panel * NR;
        let live = NR.min(jc + nc - j0);
        match b.op {
            Op::NoTrans => {
                for p in 0..kc {
                    let row = &b.mat.row(pc + p)[j0..j0 + live];
                    chunk[p * NR..p * NR + live].copy_from_slice(row);
                }
            }
            Op::Trans => {
                // Logical column j is stored row j: stream it, scattering
                // with stride NR.
                for j in 0..live {
                    let row = &b.mat.row(j0 + j)[pc..pc + kc];
                    for (p, &v) in row.iter().enumerate() {
                        chunk[p * NR + j] = v;
                    }
                }
            }
        }
        if live < NR {
            for p in 0..kc {
                for j in live..NR {
                    chunk[p * NR + j] = 0.0;
                }
            }
        }
    }
}

/// Runs the two inner register-tile loops for one packed (A block, B panel)
/// pair, writing `alpha * acc` into the `mc x nc` slab of C starting at
/// row offset 0 of `c_rows` (a borrowed `mc x c_stride` row slice) and
/// column `jc`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    abuf: &[f64],
    bbuf: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    jc: usize,
    alpha: f64,
    c_rows: &mut [f64],
    c_stride: usize,
) {
    for (bpanel, bchunk) in bbuf.chunks_exact(NR * kc).enumerate() {
        let j0 = bpanel * NR;
        let jw = NR.min(nc - j0);
        for (apanel, achunk) in abuf.chunks_exact(MR * kc).enumerate() {
            let i0 = apanel * MR;
            let iw = MR.min(mc - i0);
            let mut acc = [[0.0; NR]; MR];
            micro_dispatch(achunk, bchunk, &mut acc);
            for r in 0..iw {
                let crow = &mut c_rows[(i0 + r) * c_stride + jc + j0..][..jw];
                for (cv, av) in crow.iter_mut().zip(acc[r].iter()) {
                    *cv += alpha * av;
                }
            }
        }
    }
}

/// Shared pointer to C's storage for the parallel loop nest. Work items
/// partition C into disjoint `(row-tile × column-range)` tiles, so no two
/// threads ever touch the same element.
struct CPtr(*mut f64);

// SAFETY: CPtr is only dereferenced inside `macro_kernel_par`, and the
// parallel dispatch in `run_packed` hands every work item a distinct
// (row-range × column-range) tile of C — no element is reachable from two
// items — while the submitting thread keeps the `&mut Matrix` borrow
// alive (and untouched) until every item has completed.
unsafe impl Send for CPtr {}
// SAFETY: as above — concurrent use from multiple threads only ever
// writes pairwise-disjoint elements.
unsafe impl Sync for CPtr {}

/// The parallel-path twin of [`macro_kernel`]: identical arithmetic and
/// iteration order, but writes C through a shared raw pointer so that
/// work items owning disjoint tiles of the same row can run concurrently
/// (disjoint `&mut` sub-slices of one row cannot be expressed safely).
/// `row0`/`col0` are the tile's absolute top-left corner in C.
#[allow(clippy::too_many_arguments)]
fn macro_kernel_par(
    abuf: &[f64],
    bbuf: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    col0: usize,
    alpha: f64,
    c: &CPtr,
    row0: usize,
    c_stride: usize,
) {
    for (bpanel, bchunk) in bbuf.chunks_exact(NR * kc).enumerate() {
        let j0 = bpanel * NR;
        let jw = NR.min(nc - j0);
        for (apanel, achunk) in abuf.chunks_exact(MR * kc).enumerate() {
            let i0 = apanel * MR;
            let iw = MR.min(mc - i0);
            let mut acc = [[0.0; NR]; MR];
            micro_dispatch(achunk, bchunk, &mut acc);
            for r in 0..iw {
                // SAFETY: this work item exclusively owns the
                // (row0..row0+mc) × (col0..col0+nc) tile of C: run_packed
                // hands out pairwise-disjoint tiles, blocks until all items
                // finish, and row0+i0+r < row0+mc and col0+j0+jw ≤ col0+nc
                // keep the slice inside both the tile and C's allocation —
                // so no other thread can read or write any element of it.
                let crow = unsafe {
                    std::slice::from_raw_parts_mut(
                        c.0.add((row0 + i0 + r) * c_stride + col0 + j0),
                        jw,
                    )
                };
                for (cv, av) in crow.iter_mut().zip(acc[r].iter()) {
                    *cv += alpha * av;
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread A-packing buffer for the parallel loop nest, reused
    /// across work items and calls (bounded by mc·kc floats per thread).
    static ABUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// The packed engine proper, with explicit blocking parameters and an
/// explicit serial/parallel choice. `beta` must already have been applied
/// to `C` by the caller ([`GemmBackend::gemm_checked`] does; the autotuner
/// probes call this directly with candidate parameters, which is what
/// keeps calibration from recursing into [`super::tune::params`]).
///
/// The parallel and serial paths produce **bitwise identical** results
/// for the same parameters: both accumulate each C element's `pc`-partial
/// sums in the same outer-loop order, computed by the same microkernel.
pub(super) fn run_packed(
    p: &Params,
    parallel: bool,
    name: &'static str,
    alpha: f64,
    a: OpRef<'_>,
    b: OpRef<'_>,
    c: &mut Matrix,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (mc_p, kc_p, nc_p) = (p.mc, p.kc, p.nc);
    let mut bbuf = vec![0.0; n.min(nc_p).div_ceil(NR) * NR * k.min(kc_p)];
    // Kernel perf counters want the packing/microkernel time split;
    // resolve the gate once so disabled runs never read a clock.
    let perf_on = super::perf::is_enabled();

    for jc in (0..n).step_by(nc_p) {
        let nc = nc_p.min(n - jc);
        for pc in (0..k).step_by(kc_p) {
            let kc = kc_p.min(k - pc);
            let blen = nc.div_ceil(NR) * NR * kc;
            let tb = perf_on.then(std::time::Instant::now);
            pack_b(b, pc, kc, jc, nc, &mut bbuf[..blen]);
            if let Some(tb) = tb {
                super::perf::record_pack(name, tb.elapsed());
            }
            let bpanel = &bbuf[..blen];

            if parallel {
                // Fan the macro-tile grid out across the persistent pool:
                // one work item per (A row-tile × B column-range), each
                // packing its own A tile into a thread-local buffer. Wide-
                // but-short operands (few row tiles) split the jr loop so
                // every thread still gets work; an item covering a split
                // repacks its A tile, which is O(mc·kc) against the item's
                // O(mc·kc·nc/splits) compute.
                let ic_tiles = m.div_ceil(mc_p);
                let jr_panels = nc.div_ceil(NR);
                let want_items = rayon::current_num_threads() * 2;
                let jr_splits = if ic_tiles >= want_items {
                    1
                } else {
                    want_items
                        .div_ceil(ic_tiles)
                        .min(jr_panels.div_ceil(4))
                        .max(1)
                };
                let panels_per = jr_panels.div_ceil(jr_splits);
                let mut items = Vec::with_capacity(ic_tiles * jr_splits);
                for t in 0..ic_tiles {
                    let mut p0 = 0;
                    while p0 < jr_panels {
                        items.push((t * mc_p, p0, (p0 + panels_per).min(jr_panels)));
                        p0 += panels_per;
                    }
                }
                let cptr = CPtr(c.as_mut_slice().as_mut_ptr());
                items.into_par_iter().for_each(|(ic, p0, p1)| {
                    let mc = mc_p.min(m - ic);
                    ABUF.with(|cell| {
                        let mut abuf = cell.borrow_mut();
                        let alen = mc.div_ceil(MR) * MR * kc;
                        if abuf.len() < alen {
                            abuf.resize(alen, 0.0);
                        }
                        let ta = perf_on.then(std::time::Instant::now);
                        pack_a(a, ic, mc, pc, kc, &mut abuf[..alen]);
                        if let Some(ta) = ta {
                            super::perf::record_pack(name, ta.elapsed());
                        }
                        let b_sub = &bpanel[p0 * NR * kc..p1 * NR * kc];
                        let nc_sub = (nc - p0 * NR).min((p1 - p0) * NR);
                        macro_kernel_par(
                            &abuf[..alen],
                            b_sub,
                            kc,
                            mc,
                            nc_sub,
                            jc + p0 * NR,
                            alpha,
                            &cptr,
                            ic,
                            n,
                        );
                    });
                });
            } else {
                let mut abuf = vec![0.0; mc_p.min(m).div_ceil(MR) * MR * kc];
                for ic in (0..m).step_by(mc_p) {
                    let mc = mc_p.min(m - ic);
                    let alen = mc.div_ceil(MR) * MR * kc;
                    let ta = perf_on.then(std::time::Instant::now);
                    pack_a(a, ic, mc, pc, kc, &mut abuf[..alen]);
                    if let Some(ta) = ta {
                        super::perf::record_pack(name, ta.elapsed());
                    }
                    let c_rows = &mut c.as_mut_slice()[ic * n..(ic + mc) * n];
                    macro_kernel(&abuf[..alen], bpanel, kc, mc, nc, jc, alpha, c_rows, n);
                }
            }
        }
    }
}

impl GemmBackend for super::Packed {
    fn gemm_checked(
        &self,
        alpha: f64,
        a: OpRef<'_>,
        b: OpRef<'_>,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<()> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        scale_by_beta(c, beta);
        if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
            return Ok(());
        }
        let p = super::tune::params();
        // The old `m > MC` gate is gone: wide-but-short operands now
        // parallelize via jr-splitting. What remains is the crossover
        // (below it, fan-out overhead beats the win) and the degenerate
        // single-thread pool, where the serial nest is strictly better.
        let use_par =
            self.parallel && rayon::current_num_threads() > 1 && m * k * n >= p.par_min_madds;
        if self.parallel {
            super::perf::record_packed_path(self.name(), use_par);
        }
        run_packed(&p, use_par, self.name(), alpha, a, b, c);
        Ok(())
    }

    fn name(&self) -> &'static str {
        if self.parallel {
            "packed"
        } else {
            "packed-serial"
        }
    }

    fn trsm_block(&self) -> Option<usize> {
        Some(super::tune::params().mc)
    }
}
