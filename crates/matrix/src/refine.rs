//! Newton–Schulz iterative refinement of a computed inverse.
//!
//! The paper leaves "a deeper investigation of numerical stability for
//! future work" (Section 5). Newton–Schulz is the standard cheap polish:
//! given an approximate inverse `X ≈ A^-1`,
//!
//! `X' = X·(2I − A·X)`
//!
//! converges quadratically whenever `||I − A·X|| < 1` in any induced
//! norm. Two matrix multiplications per step — exactly the operation the
//! distributed pipeline is good at — so a refined distributed inverse
//! costs two more block-wrap jobs per step.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::kernel::{self, notrans};
use crate::norms::inversion_residual;

/// Outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// The refined inverse.
    pub inverse: Matrix,
    /// Residual `max |I − A·X|` before each step (first entry = input).
    pub residual_history: Vec<f64>,
    /// Steps actually taken.
    pub steps: usize,
}

/// Refines `x ≈ a^-1` with up to `max_steps` Newton–Schulz steps,
/// stopping early once the residual reaches `target` or stops improving.
pub fn refine_inverse(a: &Matrix, x: &Matrix, max_steps: usize, target: f64) -> Result<Refinement> {
    let n = a.order()?;
    if x.shape() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "refine",
            lhs: a.shape(),
            rhs: x.shape(),
        });
    }
    let mut current = x.clone();
    let mut history = vec![inversion_residual(a, &current)?];
    let mut steps = 0;
    for _ in 0..max_steps {
        let last = *history.last().unwrap();
        if last <= target {
            break;
        }
        // X' = X(2I - AX)
        let ax = kernel::mul(notrans(a), notrans(&current))?;
        let mut two_i_minus_ax = -&ax;
        for i in 0..n {
            two_i_minus_ax[(i, i)] += 2.0;
        }
        let next = kernel::mul(notrans(&current), notrans(&two_i_minus_ax))?;
        let res = inversion_residual(a, &next)?;
        if !res.is_finite() || res >= last {
            break; // divergence or stagnation: keep the best iterate
        }
        current = next;
        history.push(res);
        steps += 1;
    }
    Ok(Refinement {
        inverse: current,
        residual_history: history,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::lu_decompose;
    use crate::random::random_well_conditioned;
    use crate::triangular::{invert_lower, invert_upper};

    fn rough_inverse(a: &Matrix) -> Matrix {
        let f = lu_decompose(a).unwrap();
        f.perm.apply_cols(
            &(&invert_upper(&f.upper()).unwrap() * &invert_lower(&f.unit_lower()).unwrap()),
        )
    }

    #[test]
    fn refinement_improves_a_perturbed_inverse() {
        let a = random_well_conditioned(24, 1);
        let mut x = rough_inverse(&a);
        // Corrupt the inverse slightly (simulating accumulated rounding).
        for i in 0..24 {
            x[(i, i)] *= 1.0 + 1e-4;
        }
        let before = inversion_residual(&a, &x).unwrap();
        let out = refine_inverse(&a, &x, 8, 1e-14).unwrap();
        let after = *out.residual_history.last().unwrap();
        assert!(after < before / 100.0, "{before} -> {after}");
        assert!(out.steps >= 1);
        assert!(out.residual_history.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn already_good_inverse_stops_immediately() {
        let a = random_well_conditioned(16, 2);
        let x = rough_inverse(&a);
        let out = refine_inverse(&a, &x, 5, 1e-9).unwrap();
        assert_eq!(out.steps, 0, "input already beats the target");
    }

    #[test]
    fn hopeless_start_does_not_diverge() {
        let a = random_well_conditioned(12, 3);
        let x = Matrix::identity(12); // ||I - AX|| >= 1: Newton won't converge
        let out = refine_inverse(&a, &x, 5, 1e-12).unwrap();
        let last = *out.residual_history.last().unwrap();
        assert!(last.is_finite(), "refinement must bail out, not explode");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = random_well_conditioned(4, 4);
        let x = Matrix::zeros(3, 3);
        assert!(refine_inverse(&a, &x, 1, 0.0).is_err());
        assert!(refine_inverse(&Matrix::zeros(2, 3), &x, 1, 0.0).is_err());
    }
}
