//! Error type shared by all linear-algebra operations.

use std::fmt;

/// Result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// A pivot smaller than the singularity threshold was encountered: the
    /// matrix is singular (or numerically so) and cannot be inverted.
    Singular {
        /// Elimination step at which the zero pivot appeared.
        step: usize,
    },
    /// A block index or range fell outside the matrix.
    OutOfBounds {
        /// Description of the access that failed.
        op: &'static str,
        /// Requested row range (begin inclusive, end exclusive).
        rows: (usize, usize),
        /// Requested column range (begin inclusive, end exclusive).
        cols: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// A tuning or shape parameter is outside its valid range (e.g. a
    /// zero tile size).
    InvalidParameter {
        /// Description of the operation that rejected the parameter.
        op: &'static str,
        /// What was wrong with the value.
        what: &'static str,
    },
    /// A serialized matrix could not be decoded.
    Codec(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::NotSquare { shape } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            MatrixError::Singular { step } => {
                write!(
                    f,
                    "matrix is singular (zero pivot at elimination step {step})"
                )
            }
            MatrixError::OutOfBounds {
                op,
                rows,
                cols,
                shape,
            } => write!(
                f,
                "block out of bounds in {op}: rows {}..{} cols {}..{} of a {}x{} matrix",
                rows.0, rows.1, cols.0, cols.1, shape.0, shape.1
            ),
            MatrixError::InvalidParameter { op, what } => {
                write!(f, "invalid parameter in {op}: {what}")
            }
            MatrixError::Codec(msg) => write!(f, "matrix codec error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::DimensionMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in mul: 2x3 vs 4x5");

        let e = MatrixError::NotSquare { shape: (2, 3) };
        assert!(e.to_string().contains("square"));

        let e = MatrixError::Singular { step: 7 };
        assert!(e.to_string().contains("step 7"));

        let e = MatrixError::OutOfBounds {
            op: "block",
            rows: (0, 9),
            cols: (0, 2),
            shape: (4, 4),
        };
        assert!(e.to_string().contains("rows 0..9"));

        let e = MatrixError::Codec("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MatrixError::Singular { step: 0 });
    }
}
