//! Matrix codecs for DFS storage.
//!
//! The paper stores the input matrix as a text file (`a.txt`) and reports
//! both text and binary sizes for its evaluation suite (Table 3). Blocks
//! moving through the pipeline use the binary codec; the text codec exists
//! for inputs, outputs, and the Table 3 size accounting.
//!
//! Binary format (little-endian):
//!
//! ```text
//! magic  b"MRX1"      4 bytes
//! rows   u64          8 bytes
//! cols   u64          8 bytes
//! data   f64 * rows*cols, row-major
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

const MAGIC: &[u8; 4] = b"MRX1";
const HEADER_LEN: usize = 4 + 8 + 8;

/// Serializes a matrix to the binary format.
pub fn encode_binary(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + m.as_slice().len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a matrix from the binary format.
pub fn decode_binary(mut data: &[u8]) -> Result<Matrix> {
    if data.len() < HEADER_LEN {
        return Err(MatrixError::Codec(format!(
            "binary matrix truncated: {} bytes, need at least {HEADER_LEN}",
            data.len()
        )));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(MatrixError::Codec(format!("bad magic {magic:?}")));
    }
    let rows = data.get_u64_le() as usize;
    let cols = data.get_u64_le() as usize;
    let expect = rows
        .checked_mul(cols)
        .and_then(|e| e.checked_mul(8))
        .ok_or_else(|| MatrixError::Codec("dimension overflow".into()))?;
    if data.remaining() != expect {
        return Err(MatrixError::Codec(format!(
            "binary matrix payload is {} bytes, expected {expect} for {rows}x{cols}",
            data.remaining()
        )));
    }
    let mut vals = Vec::with_capacity(rows * cols);
    while data.has_remaining() {
        vals.push(data.get_f64_le());
    }
    Matrix::from_vec(rows, cols, vals)
}

/// Exact size in bytes of the binary encoding of a `rows x cols` matrix.
pub fn binary_size(rows: usize, cols: usize) -> u64 {
    HEADER_LEN as u64 + 8 * rows as u64 * cols as u64
}

/// Serializes a matrix to the text format: a `rows cols` header line, then
/// one line per row of space-separated decimal values.
pub fn encode_text(m: &Matrix) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(16 + m.as_slice().len() * 20);
    let _ = writeln!(out, "{} {}", m.rows(), m.cols());
    for row in m.row_iter() {
        let mut first = true;
        for v in row {
            if !first {
                out.push(' ');
            }
            first = false;
            // 17 significant digits round-trips every f64 exactly.
            let _ = write!(out, "{v:.17e}");
        }
        out.push('\n');
    }
    out
}

/// Deserializes a matrix from the text format.
pub fn decode_text(text: &str) -> Result<Matrix> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Codec("empty text matrix".into()))?;
    let mut parts = header.split_whitespace();
    let rows: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| MatrixError::Codec(format!("bad header line {header:?}")))?;
    let cols: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| MatrixError::Codec(format!("bad header line {header:?}")))?;
    let mut vals = Vec::with_capacity(rows * cols);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        if i >= rows {
            return Err(MatrixError::Codec(format!(
                "too many rows: expected {rows}"
            )));
        }
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|e| MatrixError::Codec(format!("bad value {tok:?} on row {i}: {e}")))?;
            vals.push(v);
        }
    }
    if vals.len() != rows * cols {
        return Err(MatrixError::Codec(format!(
            "expected {} values for {rows}x{cols}, found {}",
            rows * cols,
            vals.len()
        )));
    }
    Matrix::from_vec(rows, cols, vals)
}

/// Estimated size in bytes of the text encoding of a `rows x cols` matrix
/// (each value printed with 17 significant digits plus separator, ~25
/// bytes). Used for the Table 3 text-size column.
pub fn text_size_estimate(rows: usize, cols: usize) -> u64 {
    16 + 25 * rows as u64 * cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;

    #[test]
    fn binary_round_trip_is_exact() {
        let m = random_matrix(17, 9, 3);
        let enc = encode_binary(&m);
        assert_eq!(enc.len() as u64, binary_size(17, 9));
        let back = decode_binary(&enc).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_rejects_corruption() {
        let m = random_matrix(3, 3, 0);
        let enc = encode_binary(&m);
        assert!(decode_binary(&enc[..10]).is_err());
        let mut bad = enc.to_vec();
        bad[0] = b'X';
        assert!(decode_binary(&bad).is_err());
        bad = enc.to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(decode_binary(&bad).is_err());
        assert!(decode_binary(&[]).is_err());
    }

    #[test]
    fn text_round_trip_is_exact() {
        let m = random_matrix(7, 11, 5);
        let enc = encode_text(&m);
        let back = decode_text(&enc).unwrap();
        assert_eq!(back, m, "17-digit text round trip must be bit exact");
    }

    #[test]
    fn text_handles_special_values() {
        let m = Matrix::from_rows(&[&[0.0, -0.0], &[f64::MAX, f64::MIN_POSITIVE]]).unwrap();
        let back = decode_text(&encode_text(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn text_rejects_malformed_input() {
        assert!(decode_text("").is_err());
        assert!(decode_text("abc def\n").is_err());
        assert!(decode_text("2 2\n1 2\n3\n").is_err());
        assert!(decode_text("2 2\n1 2\n3 4\n5 6\n").is_err());
        assert!(decode_text("1 2\n1 banana\n").is_err());
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(decode_binary(&encode_binary(&m)).unwrap(), m);
        assert_eq!(decode_text(&encode_text(&m)).unwrap(), m);
    }

    #[test]
    fn size_formulas() {
        assert_eq!(binary_size(0, 0), 20);
        assert_eq!(binary_size(10, 10), 20 + 800);
        assert!(text_size_estimate(10, 10) > binary_size(10, 10));
    }

    #[test]
    fn table3_binary_sizes_extrapolate() {
        // Table 3: a 102400^2 matrix is ~80 GB binary (8 bytes/elem).
        let gb = binary_size(102_400, 102_400) as f64 / (1u64 << 30) as f64;
        assert!((gb - 78.1).abs() < 1.0, "expected ~78 GiB, got {gb}");
    }
}
