//! QR decomposition via the Gram-Schmidt process — the paper's second
//! considered-and-rejected inversion method (Section 2).
//!
//! `A = Q·R` with `Q` orthogonal and `R` upper triangular gives
//! `A^-1 = R^-1·Qᵀ`. The paper rejects it for MapReduce because
//! Gram-Schmidt "requires computing a sequence of n vectors where each
//! vector relies on all previous vectors (i.e., n steps are required)".
//! We implement the *modified* Gram-Schmidt variant (numerically far
//! better than classical, same sequential structure) so the Section 2
//! comparison is executable.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::triangular::back_substitution;

/// The QR factors of a square matrix.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthogonal factor (`QᵀQ = I`).
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

/// Decomposes `a = Q·R` by modified Gram-Schmidt.
///
/// Returns [`MatrixError::Singular`] when a column's residual norm
/// vanishes (rank deficiency).
pub fn qr_decompose(a: &Matrix) -> Result<QrFactors> {
    let n = a.order()?;
    // Work on columns: v_j starts as column j of A.
    let mut v: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut q = Matrix::zeros(n, n);
    let mut r = Matrix::zeros(n, n);
    let scale = a.as_slice().iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    let tol = if scale == 0.0 {
        f64::MIN_POSITIVE
    } else {
        scale * f64::EPSILON * n as f64
    };

    for j in 0..n {
        // The sequential dependency: q_j needs every earlier q_k.
        let norm = v[j].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < tol {
            return Err(MatrixError::Singular { step: j });
        }
        r[(j, j)] = norm;
        let qj: Vec<f64> = v[j].iter().map(|x| x / norm).collect();
        for (i, &val) in qj.iter().enumerate() {
            q[(i, j)] = val;
        }
        for k in (j + 1)..n {
            let proj: f64 = qj.iter().zip(&v[k]).map(|(a, b)| a * b).sum();
            r[(j, k)] = proj;
            for (vi, &qi) in v[k].iter_mut().zip(&qj) {
                *vi -= proj * qi;
            }
        }
    }
    Ok(QrFactors { q, r })
}

/// Inverts `a` through QR: `A^-1 = R^-1·Qᵀ`, computed column by column
/// with back substitution (`R·x = Qᵀ·e_j`).
pub fn invert_qr(a: &Matrix) -> Result<Matrix> {
    let n = a.order()?;
    let f = qr_decompose(a)?;
    let qt = f.q.transpose();
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        let x = back_substitution(&f.r, qt.col(j).as_slice())?;
        for i in 0..n {
            inv[(i, j)] = x[i];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::inversion_residual;
    use crate::random::{random_invertible, random_well_conditioned};

    #[test]
    fn q_is_orthogonal_and_r_upper() {
        let a = random_invertible(24, 1);
        let f = qr_decompose(&a).unwrap();
        let qtq = &f.q.transpose() * &f.q;
        assert!(qtq.approx_eq(&Matrix::identity(24), 1e-9), "QᵀQ = I");
        for i in 0..24 {
            assert!(f.r[(i, i)] > 0.0, "positive diagonal");
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_reconstructs_a() {
        for seed in 0..3 {
            let a = random_invertible(20, seed);
            let f = qr_decompose(&a).unwrap();
            assert!((&f.q * &f.r).approx_eq(&a, 1e-9));
        }
    }

    #[test]
    fn inversion_is_accurate() {
        for &n in &[1usize, 5, 16, 48] {
            let a = random_well_conditioned(n, n as u64 + 7);
            let inv = invert_qr(&a).unwrap();
            let res = inversion_residual(&a, &inv).unwrap();
            assert!(res < 1e-8, "n={n}: residual {res}");
        }
    }

    #[test]
    fn agrees_with_gauss_jordan() {
        let a = random_invertible(28, 4);
        let qr = invert_qr(&a).unwrap();
        let gj = crate::gauss_jordan::invert_gauss_jordan(&a).unwrap();
        assert!(qr.approx_eq(&gj, 1e-7));
    }

    #[test]
    fn rank_deficiency_is_detected() {
        let mut a = random_well_conditioned(6, 2);
        // Make column 4 a copy of column 1.
        for i in 0..6 {
            let v = a[(i, 1)];
            a[(i, 4)] = v;
        }
        assert!(qr_decompose(&a).is_err());
        assert!(invert_qr(&Matrix::zeros(3, 3)).is_err());
        assert!(qr_decompose(&Matrix::zeros(2, 3)).is_err());
    }
}
