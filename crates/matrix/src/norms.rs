//! Matrix and vector norms, plus the paper's accuracy metric.

use crate::dense::Matrix;
use crate::error::Result;
use crate::kernel::{self, notrans};

impl Matrix {
    /// Maximum absolute element (`max_{ij} |a_ij|`).
    pub fn max_norm(&self) -> f64 {
        self.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm (`sqrt(sum a_ij^2)`).
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        self.row_iter()
            .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// One norm (maximum absolute column sum).
    pub fn one_norm(&self) -> f64 {
        let mut sums = vec![0.0_f64; self.cols()];
        for row in self.row_iter() {
            for (s, v) in sums.iter_mut().zip(row) {
                *s += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }
}

/// Euclidean norm of a vector.
pub fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The paper's Section 7.2 accuracy metric: the maximum absolute element of
/// `I_n - M·M_inv`. The paper verifies this is below `1e-5` for its suite.
pub fn inversion_residual(m: &Matrix, m_inv: &Matrix) -> Result<f64> {
    let n = m.order()?;
    let prod = kernel::mul(notrans(m), notrans(m_inv))?;
    let residual = &Matrix::identity(n) - &prod;
    Ok(residual.max_norm())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::lu_decompose;
    use crate::random::random_well_conditioned;
    use crate::triangular::{invert_lower, invert_upper};

    #[test]
    fn norms_on_known_matrix() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]).unwrap();
        assert_eq!(m.max_norm(), 4.0);
        assert_eq!(m.inf_norm(), 7.0);
        assert_eq!(m.one_norm(), 6.0);
        assert!((m.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn norms_on_empty_and_zero() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(z.max_norm(), 0.0);
        assert_eq!(z.frobenius_norm(), 0.0);
        let e = Matrix::zeros(0, 0);
        assert_eq!(e.inf_norm(), 0.0);
        assert_eq!(e.one_norm(), 0.0);
    }

    #[test]
    fn vec_norm_matches_manual() {
        assert_eq!(vec_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(vec_norm(&[]), 0.0);
    }

    #[test]
    fn residual_of_true_inverse_is_tiny() {
        let a = random_well_conditioned(32, 17);
        let f = lu_decompose(&a).unwrap();
        let l_inv = invert_lower(&f.unit_lower()).unwrap();
        let u_inv = invert_upper(&f.upper()).unwrap();
        // A^-1 = U^-1 L^-1 P (Section 4.3).
        let a_inv = f.perm.apply_cols(&(&u_inv * &l_inv));
        let res = inversion_residual(&a, &a_inv).unwrap();
        assert!(res < crate::PAPER_ACCURACY, "residual {res} too large");
    }

    #[test]
    fn residual_detects_a_wrong_inverse() {
        let a = random_well_conditioned(8, 3);
        let wrong = Matrix::identity(8);
        let res = inversion_residual(&a, &wrong).unwrap();
        assert!(res > 1.0);
    }

    #[test]
    fn residual_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(inversion_residual(&a, &a).is_err());
    }
}
