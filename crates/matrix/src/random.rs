//! Seeded random test-matrix generation.
//!
//! The paper generates its evaluation matrices with Java's `Random`
//! (Section 7.1) and notes that performance depends only on matrix order,
//! not values. We use a seeded [`rand::rngs::StdRng`] so every experiment is
//! reproducible bit-for-bit across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::Matrix;

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Uniform random square matrix made strictly diagonally dominant (hence
/// well conditioned and invertible without pivoting).
///
/// Each diagonal entry is set to the row's absolute sum plus one, keeping
/// the inverse's entries well scaled for accuracy assertions.
pub fn random_well_conditioned(n: usize, seed: u64) -> Matrix {
    let mut m = random_matrix(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = row_sum + 1.0;
    }
    m
}

/// Random *invertible* general matrix: uniform entries, rejecting (by
/// reseeding) draws whose LU decomposition fails.
///
/// Random dense matrices are almost surely invertible, so the loop nearly
/// always succeeds on the first draw; the retry guards pathological seeds.
pub fn random_invertible(n: usize, seed: u64) -> Matrix {
    for attempt in 0..16 {
        let m = random_matrix(n, n, seed.wrapping_add(attempt * 0x9E37_79B9));
        if crate::lu::lu_decompose(&m).is_ok() {
            return m;
        }
    }
    // Fall back to a matrix that is invertible by construction.
    random_well_conditioned(n, seed)
}

/// Random unit lower-triangular matrix (implicit 1.0 diagonal stored
/// explicitly) with off-diagonal entries in `[-1, 1)`.
pub fn random_unit_lower(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        use std::cmp::Ordering;
        match j.cmp(&i) {
            Ordering::Less => rng.gen_range(-1.0..1.0),
            Ordering::Equal => 1.0,
            Ordering::Greater => 0.0,
        }
    })
}

/// Random upper-triangular matrix with diagonal entries bounded away from
/// zero (magnitude in `[1, 2)`, random sign).
pub fn random_upper(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        use std::cmp::Ordering;
        match j.cmp(&i) {
            Ordering::Greater => rng.gen_range(-1.0..1.0),
            Ordering::Equal => {
                let mag = rng.gen_range(1.0..2.0);
                if rng.gen_bool(0.5) {
                    mag
                } else {
                    -mag
                }
            }
            Ordering::Less => 0.0,
        }
    })
}

/// Random symmetric positive-definite matrix (`B·Bᵀ + n·I`), used by
/// application examples (e.g. covariance-style systems).
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let b = random_matrix(n, n, seed);
    // Naive backend: generated matrices must stay bit-identical across
    // kernel changes (seeded generators feed pinned end-to-end hashes).
    let mut m = Matrix::zeros(n, n);
    crate::kernel::gemm_with(
        &crate::kernel::Naive,
        1.0,
        crate::kernel::notrans(&b),
        crate::kernel::trans(&b),
        0.0,
        &mut m,
    )
    .expect("square product");
    for i in 0..n {
        m[(i, i)] += n as f64;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        assert_eq!(random_matrix(5, 7, 42), random_matrix(5, 7, 42));
        assert_ne!(random_matrix(5, 7, 42), random_matrix(5, 7, 43));
    }

    #[test]
    fn entries_are_bounded() {
        let m = random_matrix(20, 20, 1);
        assert!(m.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn well_conditioned_is_diagonally_dominant() {
        let m = random_well_conditioned(15, 2);
        for i in 0..15 {
            let off: f64 = m
                .row(i)
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(m[(i, i)].abs() > off);
        }
    }

    #[test]
    fn invertible_matrices_decompose() {
        for seed in 0..4 {
            let m = random_invertible(12, seed);
            assert!(crate::lu::lu_decompose(&m).is_ok());
        }
    }

    #[test]
    fn triangular_generators_have_right_shape() {
        let l = random_unit_lower(8, 3);
        let u = random_upper(8, 4);
        for i in 0..8 {
            assert_eq!(l[(i, i)], 1.0);
            assert!(u[(i, i)].abs() >= 1.0);
            for j in (i + 1)..8 {
                assert_eq!(l[(i, j)], 0.0);
                assert_eq!(u[(j, i)], 0.0);
            }
        }
    }

    #[test]
    fn spd_is_symmetric_and_decomposable() {
        let m = random_spd(10, 5);
        for i in 0..10 {
            for j in 0..10 {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
            }
        }
        assert!(crate::lu::lu_decompose_no_pivot(&m).is_ok());
    }
}
