//! Single-node LU decomposition with partial pivoting (Algorithm 1).
//!
//! On the master node the pipeline decomposes blocks of order at most `nb`
//! with this routine; the distributed block method (Algorithm 2) lives in
//! the core crate and calls back into this one at the recursion leaves.
//!
//! The factors are stored *in place of the input* exactly as the paper
//! describes: the strict lower triangle holds `L` (whose unit diagonal is
//! implicit) and the upper triangle, including the diagonal, holds `U`.
//! Pivoting produces the permutation `P` (as a compact
//! [`Permutation`] array) such that `P·A = L·U`.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::permutation::Permutation;

/// Packed LU factors plus the pivot permutation: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed factors: strict lower triangle is `L` (unit diagonal
    /// implicit), upper triangle is `U`.
    pub lu: Matrix,
    /// Row permutation `P` with `P·A = L·U`.
    pub perm: Permutation,
}

impl LuFactors {
    /// Extracts the unit lower-triangular factor `L`.
    pub fn unit_lower(&self) -> Matrix {
        let n = self.lu.rows();
        let mut l = Matrix::identity(n);
        for i in 1..n {
            for j in 0..i {
                l[(i, j)] = self.lu[(i, j)];
            }
        }
        l
    }

    /// Extracts the upper-triangular factor `U`.
    pub fn upper(&self) -> Matrix {
        let n = self.lu.rows();
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                u[(i, j)] = self.lu[(i, j)];
            }
        }
        u
    }

    /// Recomputes `L·U` (equals `P·A`); used by tests and accuracy checks.
    pub fn reconstruct(&self) -> Matrix {
        &self.unit_lower() * &self.upper()
    }
}

/// Approximate flop count of an order-`n` LU decomposition
/// (`n^3/3` multiplications plus `n^3/3` additions, Section 2).
pub fn lu_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3
}

/// LU-decomposes `a` with partial pivoting (Algorithm 1): returns packed
/// factors and the permutation with `P·A = L·U`.
///
/// Returns [`MatrixError::Singular`] when an elimination step finds no pivot
/// above the numerical threshold (the matrix has no inverse).
pub fn lu_decompose(a: &Matrix) -> Result<LuFactors> {
    let mut lu = a.clone();
    let perm = lu_decompose_in_place(&mut lu)?;
    Ok(LuFactors { lu, perm })
}

/// Matrix order at or above which [`lu_decompose_in_place`] switches to
/// the kernel engine's blocked factorization (when the packed backend is
/// active). Below it the classic rank-1 loop wins and — more importantly —
/// stays bit-identical to the seed implementation, which the distributed
/// pipeline's `nb`-sized leaf decompositions rely on.
const BLOCKED_LU_MIN_ORDER: usize = 128;

/// In-place variant of [`lu_decompose`]; `a` is overwritten with the packed
/// factors.
///
/// Orders ≥ 128 are factored with the blocked right-looking algorithm
/// ([`crate::kernel::lu_blocked_in_place`]) when the process-wide GEMM
/// backend is the packed engine; pivot choices are identical either way,
/// factor values differ only in the trailing updates' summation order.
pub fn lu_decompose_in_place(a: &mut Matrix) -> Result<Permutation> {
    use crate::kernel::{self, BackendKind};
    let n = a.order()?;
    if n >= BLOCKED_LU_MIN_ORDER {
        let kind = kernel::global_backend();
        if matches!(kind, BackendKind::Packed | BackendKind::PackedSerial) {
            let backend: &dyn kernel::GemmBackend = match kind {
                BackendKind::PackedSerial => &kernel::Packed { parallel: false },
                _ => &kernel::Packed { parallel: true },
            };
            return kernel::lu_blocked_in_place(a, 64, backend);
        }
    }
    let mut perm = Permutation::identity(n);
    // Relative singularity threshold: pivots this far below the matrix
    // magnitude are treated as zero.
    let scale = a.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let tol = if scale == 0.0 {
        f64::MIN_POSITIVE
    } else {
        scale * f64::EPSILON * n as f64
    };

    for i in 0..n {
        // Select the row with the maximum |[A]_ji| among rows i..n (line 3).
        let mut pivot_row = i;
        let mut pivot_val = a[(i, i)].abs();
        for j in (i + 1)..n {
            let v = a[(j, i)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = j;
            }
        }
        if pivot_val < tol {
            return Err(MatrixError::Singular { step: i });
        }
        if pivot_row != i {
            a.swap_rows(i, pivot_row);
            perm.swap(i, pivot_row);
        }

        // Scale the column below the pivot (lines 6-8).
        let inv_pivot = 1.0 / a[(i, i)];
        for j in (i + 1)..n {
            a[(j, i)] *= inv_pivot;
        }

        // Rank-1 update of the trailing submatrix (lines 9-13), done
        // row-wise so both factors stream sequentially.
        for j in (i + 1)..n {
            let lji = a[(j, i)];
            if lji == 0.0 {
                continue;
            }
            // Split borrows: row i is strictly above row j here.
            let (top, bottom) = a.as_mut_slice().split_at_mut(j * n);
            let urow = &top[i * n..i * n + n];
            let jrow = &mut bottom[..n];
            for k in (i + 1)..n {
                jrow[k] -= lji * urow[k];
            }
        }
    }
    Ok(perm)
}

/// LU decomposition *without* pivoting; used by the distributed method's
/// analysis and by tests on diagonally dominant matrices where pivoting is
/// unnecessary (Equation 3).
pub fn lu_decompose_no_pivot(a: &Matrix) -> Result<LuFactors> {
    let n = a.order()?;
    let mut lu = a.clone();
    let scale = a.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let tol = if scale == 0.0 {
        f64::MIN_POSITIVE
    } else {
        scale * f64::EPSILON * n as f64
    };

    for i in 0..n {
        if lu[(i, i)].abs() < tol {
            return Err(MatrixError::Singular { step: i });
        }
        let inv_pivot = 1.0 / lu[(i, i)];
        for j in (i + 1)..n {
            lu[(j, i)] *= inv_pivot;
        }
        for j in (i + 1)..n {
            let lji = lu[(j, i)];
            if lji == 0.0 {
                continue;
            }
            let (top, bottom) = lu.as_mut_slice().split_at_mut(j * n);
            let urow = &top[i * n..i * n + n];
            let jrow = &mut bottom[..n];
            for k in (i + 1)..n {
                jrow[k] -= lji * urow[k];
            }
        }
    }
    Ok(LuFactors {
        lu,
        perm: Permutation::identity(n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_matrix, random_well_conditioned};

    #[test]
    fn known_3x3_decomposition() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, 3.0, 3.0], &[8.0, 7.0, 9.0]]).unwrap();
        let f = lu_decompose(&a).unwrap();
        let pa = f.perm.apply_rows(&a);
        assert!(f.reconstruct().approx_eq(&pa, 1e-12));
        // With partial pivoting the first pivot row must be the one with
        // max |a_i0| = 8.
        assert_eq!(f.perm.source_of(0), 2);
    }

    #[test]
    fn pa_equals_lu_random() {
        for seed in 0..5 {
            let n = 20 + seed as usize * 13;
            let a = random_matrix(n, n, seed);
            let f = lu_decompose(&a).unwrap();
            let pa = f.perm.apply_rows(&a);
            assert!(
                f.reconstruct().approx_eq(&pa, 1e-8),
                "PA != LU for seed {seed}"
            );
        }
    }

    #[test]
    fn factors_have_triangular_shape() {
        let a = random_matrix(12, 12, 42);
        let f = lu_decompose(&a).unwrap();
        let l = f.unit_lower();
        let u = f.upper();
        for i in 0..12 {
            assert_eq!(l[(i, i)], 1.0, "L must be unit diagonal");
            for j in (i + 1)..12 {
                assert_eq!(l[(i, j)], 0.0, "L must be lower triangular");
            }
            for j in 0..i {
                assert_eq!(u[(i, j)], 0.0, "U must be upper triangular");
            }
        }
    }

    #[test]
    fn pivoting_bounds_multipliers() {
        // With partial pivoting every |l_ij| <= 1.
        let a = random_matrix(30, 30, 7);
        let f = lu_decompose(&a).unwrap();
        let l = f.unit_lower();
        for i in 0..30 {
            for j in 0..i {
                assert!(l[(i, j)].abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Two identical rows.
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert!(matches!(
            lu_decompose(&a),
            Err(MatrixError::Singular { .. })
        ));
        let z = Matrix::zeros(4, 4);
        assert!(lu_decompose(&z).is_err());
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(3, 4);
        assert!(lu_decompose(&a).is_err());
        assert!(lu_decompose_no_pivot(&a).is_err());
    }

    #[test]
    fn no_pivot_matches_pivoted_on_dominant_matrices() {
        let a = random_well_conditioned(24, 3);
        let piv = lu_decompose(&a).unwrap();
        let nopiv = lu_decompose_no_pivot(&a).unwrap();
        // Diagonally dominant: pivoting should be a no-op.
        assert!(piv.perm.is_identity());
        assert!(piv.lu.approx_eq(&nopiv.lu, 1e-9));
        assert!(nopiv.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn no_pivot_rejects_zero_leading_pivot() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(lu_decompose_no_pivot(&a).is_err());
        // ...while pivoting handles it fine.
        assert!(lu_decompose(&a).is_ok());
    }

    #[test]
    fn in_place_variant_matches() {
        let a = random_matrix(16, 16, 9);
        let f = lu_decompose(&a).unwrap();
        let mut b = a.clone();
        let p = lu_decompose_in_place(&mut b).unwrap();
        assert_eq!(p, f.perm);
        assert!(b.approx_eq(&f.lu, 0.0));
    }

    #[test]
    fn order_one_matrix() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        let f = lu_decompose(&a).unwrap();
        assert_eq!(f.upper()[(0, 0)], 4.0);
        assert!(f.perm.is_identity());
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(lu_flops(0), 0);
        assert_eq!(lu_flops(3), 18);
        assert_eq!(lu_flops(100), 2 * 100 * 100 * 100 / 3);
    }
}
