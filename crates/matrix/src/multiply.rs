//! Matrix-multiply kernels.
//!
//! The distributed algorithm multiplies matrices in two places: reducers
//! compute `B = A4 - L2'·U2` during LU decomposition, and the final job
//! computes `U^-1·L^-1`. Section 6.3 of the paper observes that with both
//! operands row-major the inner loop of the naive kernel strides through the
//! right operand column-wise — one potential TLB/cache miss per element — and
//! fixes it by always storing `U` matrices *transposed*. The kernels here
//! mirror that choice:
//!
//! * [`mul_ijk`] — Equation 7's i-j-k loop with column-strided reads of
//!   the right operand (the paper's unoptimized layout);
//! * [`mul_naive`] — i-k-j loop, cache-friendly without transposition;
//! * [`mul_transposed`] — `A·B` given `Bᵀ`, both walked row-major;
//! * [`mul_blocked`] — cache-blocked variant for large orders;
//! * [`mul_parallel`] — rayon row-parallel kernel used when a single task
//!   owns a large product;
//! * [`sub_mul`] — fused `C - A·B` (the reducer update), avoiding a
//!   temporary.

// The kernels below index rows explicitly so the access pattern under
// discussion (row-major vs column-strided) stays visible in the code.
#![allow(clippy::needless_range_loop)]

use rayon::prelude::*;

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};

/// Floating-point operation count of an `m x k` by `k x n` product
/// (one multiply and one add per inner step).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

fn check_mul(a: &Matrix, b: &Matrix, op: &'static str) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

/// `A·B` with both operands row-major, i-k-j loop order (the inner loop
/// streams one row of `b`). Cache-friendly without transposition; the
/// general-purpose kernel.
pub fn mul_naive(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check_mul(a, b, "mul_naive")?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &apv) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for j in 0..n {
                crow[j] += apv * brow[j];
            }
        }
    }
    Ok(c)
}

/// The paper's Equation 7 layout: `A·B` computed i-j-k with both operands
/// row-major, so the inner loop reads `b` with stride `b.cols()` — "each
/// read of an element from U2 will access a separate memory page,
/// potentially generating a TLB miss and a cache miss" (Section 6.3).
/// This is the unoptimized kernel the transposed-U storage replaces.
pub fn mul_ijk(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check_mul(a, b, "mul_ijk")?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let b_data = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            let mut acc = 0.0;
            for (p, &apv) in arow.iter().enumerate().take(k) {
                acc += apv * b_data[p * n + j]; // stride-n access
            }
            *cij = acc;
        }
    }
    Ok(c)
}

/// Fused `C := C - A·B` in the Equation 7 i-j-k order (the transpose-off
/// ablation path of the pipeline's reducers).
pub fn sub_mul_ijk(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<()> {
    check_mul(a, b, "sub_mul_ijk")?;
    if c.shape() != (a.rows(), b.cols()) {
        return Err(MatrixError::DimensionMismatch {
            op: "sub_mul_ijk(output)",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let b_data = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            let mut acc = 0.0;
            for (p, &apv) in arow.iter().enumerate().take(k) {
                acc += apv * b_data[p * n + j];
            }
            *cij -= acc;
        }
    }
    Ok(())
}

/// `A·B` where the caller supplies `Bᵀ` (the Section 6.3 layout).
///
/// Both operands are walked strictly row-major, so each inner product is two
/// sequential scans — the access pattern the paper credits with a 2–3x
/// speedup.
pub fn mul_transposed(a: &Matrix, b_t: &Matrix) -> Result<Matrix> {
    if a.cols() != b_t.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "mul_transposed",
            lhs: a.shape(),
            rhs: b_t.shape(),
        });
    }
    let (m, n) = (a.rows(), b_t.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for j in 0..n {
            crow[j] = dot(arow, b_t.row(j));
        }
    }
    Ok(c)
}

/// Cache-blocked `A·B` (both row-major) with `tile`-sized tiles.
pub fn mul_blocked(a: &Matrix, b: &Matrix, tile: usize) -> Result<Matrix> {
    check_mul(a, b, "mul_blocked")?;
    assert!(tile > 0, "tile size must be positive");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(tile) {
        let i1 = (i0 + tile).min(m);
        for p0 in (0..k).step_by(tile) {
            let p1 = (p0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let j1 = (j0 + tile).min(n);
                for i in i0..i1 {
                    let arow = a.row(i);
                    let crow = c.row_mut(i);
                    for p in p0..p1 {
                        let apv = arow[p];
                        let brow = b.row(p);
                        for j in j0..j1 {
                            crow[j] += apv * brow[j];
                        }
                    }
                }
            }
        }
    }
    Ok(c)
}

/// Row-parallel `A·B` over rayon, using the transposed layout internally.
///
/// This is the kernel a *single* worker uses when it owns a large product;
/// the distributed block-wrap partitioning lives a level above, in the core
/// crate.
pub fn mul_parallel(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    check_mul(a, b, "mul_parallel")?;
    let b_t = b.transpose();
    mul_parallel_transposed(a, &b_t)
}

/// Row-parallel `A·B` given `Bᵀ`.
pub fn mul_parallel_transposed(a: &Matrix, b_t: &Matrix) -> Result<Matrix> {
    if a.cols() != b_t.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "mul_parallel_transposed",
            lhs: a.shape(),
            rhs: b_t.shape(),
        });
    }
    let (m, n) = (a.rows(), b_t.rows());
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let k = a.cols();
    c.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, crow)| {
            let arow = &a_data[i * k..(i + 1) * k];
            for j in 0..n {
                crow[j] = dot(arow, b_t.row(j));
            }
        });
    let _ = m;
    Ok(c)
}

/// Fused `C := C - A·B`, the reducer update `A4 - L2'·U2` (Algorithm 2
/// line 9) without materializing the product.
pub fn sub_mul(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<()> {
    check_mul(a, b, "sub_mul")?;
    if c.shape() != (a.rows(), b.cols()) {
        return Err(MatrixError::DimensionMismatch {
            op: "sub_mul(output)",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &apv) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for j in 0..n {
                crow[j] -= apv * brow[j];
            }
        }
    }
    Ok(())
}

/// Fused `C := C - A·B` given `Bᵀ` (Section 6.3 layout).
pub fn sub_mul_transposed(c: &mut Matrix, a: &Matrix, b_t: &Matrix) -> Result<()> {
    if a.cols() != b_t.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "sub_mul_transposed",
            lhs: a.shape(),
            rhs: b_t.shape(),
        });
    }
    if c.shape() != (a.rows(), b_t.rows()) {
        return Err(MatrixError::DimensionMismatch {
            op: "sub_mul_transposed(output)",
            lhs: c.shape(),
            rhs: (a.rows(), b_t.rows()),
        });
    }
    let (m, n) = (a.rows(), b_t.rows());
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for j in 0..n {
            crow[j] -= dot(arow, b_t.row(j));
        }
    }
    let _ = m;
    Ok(())
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: lets LLVM vectorize without
    // reassociation flags and reduces rounding drift vs a single chain.
    let chunks = a.len() / 4 * 4;
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    let mut i = 0;
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < a.len() {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;

    const TOL: f64 = 1e-9;

    #[test]
    fn naive_small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = mul_naive(&a, &b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(17, 17, 1);
        let i = Matrix::identity(17);
        assert!(mul_naive(&a, &i).unwrap().approx_eq(&a, TOL));
        assert!(mul_naive(&i, &a).unwrap().approx_eq(&a, TOL));
    }

    #[test]
    fn all_kernels_agree_rectangular() {
        let a = random_matrix(13, 21, 2);
        let b = random_matrix(21, 9, 3);
        let reference = mul_naive(&a, &b).unwrap();
        assert!(mul_ijk(&a, &b).unwrap().approx_eq(&reference, TOL));
        assert!(mul_transposed(&a, &b.transpose())
            .unwrap()
            .approx_eq(&reference, TOL));
        assert!(mul_blocked(&a, &b, 4).unwrap().approx_eq(&reference, TOL));
        assert!(mul_blocked(&a, &b, 64).unwrap().approx_eq(&reference, TOL));
        assert!(mul_parallel(&a, &b).unwrap().approx_eq(&reference, TOL));
        assert!(mul_parallel_transposed(&a, &b.transpose())
            .unwrap()
            .approx_eq(&reference, TOL));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(mul_naive(&a, &b).is_err());
        assert!(mul_transposed(&a, &Matrix::zeros(2, 4)).is_err());
        assert!(mul_blocked(&a, &b, 2).is_err());
        assert!(mul_parallel(&a, &b).is_err());
        let mut c = Matrix::zeros(2, 2);
        assert!(sub_mul(&mut c, &a, &b).is_err());
    }

    #[test]
    fn sub_mul_matches_explicit() {
        let a = random_matrix(8, 6, 4);
        let b = random_matrix(6, 10, 5);
        let c0 = random_matrix(8, 10, 6);
        let mut c = c0.clone();
        sub_mul(&mut c, &a, &b).unwrap();
        let expect = &c0 - &mul_naive(&a, &b).unwrap();
        assert!(c.approx_eq(&expect, TOL));

        let mut c2 = c0.clone();
        sub_mul_transposed(&mut c2, &a, &b.transpose()).unwrap();
        assert!(c2.approx_eq(&expect, TOL));

        let mut c3 = c0.clone();
        sub_mul_ijk(&mut c3, &a, &b).unwrap();
        assert!(c3.approx_eq(&expect, TOL));
        let mut bad = Matrix::zeros(3, 3);
        assert!(sub_mul_ijk(&mut bad, &a, &b).is_err());
        assert!(mul_ijk(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn sub_mul_output_shape_checked() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(sub_mul(&mut c, &a, &b).is_err());
        assert!(sub_mul_transposed(&mut c, &a, &b).is_err());
    }

    #[test]
    fn gemm_flops_counts_two_per_madd() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn dot_handles_all_lengths() {
        for len in 0..10 {
            let a: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..len).map(|i| (i * 2) as f64).collect();
            let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_products() {
        let a = Matrix::zeros(0, 0);
        let c = mul_naive(&a, &a).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = mul_naive(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
