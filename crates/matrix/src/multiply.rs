//! Deprecated matrix-multiply entry points.
//!
//! Everything here is a thin shim over [`crate::kernel`], kept for one
//! release so downstream code migrates at its own pace. The nine loop
//! variants this module used to implement collapsed into the single
//! BLAS-3-style surface `gemm(alpha, op(A), op(B), beta, C)` with
//! explicit [`Op`](crate::kernel::Op) transposition states and pluggable
//! execution backends; see the [`crate::kernel`] docs for the mapping.
//!
//! The shims delegate to the backend that reproduces each legacy kernel's
//! exact summation order, so results are bit-identical to the old code.

use crate::dense::Matrix;
use crate::error::Result;
use crate::kernel::{gemm_with, notrans, trans, Blocked, Naive, Packed, Strided};

pub use crate::kernel::gemm_flops;

/// `A·B` with both operands row-major, i-k-j loop order.
#[deprecated(since = "0.6.0", note = "use kernel::gemm with the Naive backend")]
pub fn mul_naive(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_with(&Naive, 1.0, notrans(a), notrans(b), 0.0, &mut c)?;
    Ok(c)
}

/// The paper's Equation 7 layout: i-j-k with stride-`n` reads of `b`.
#[deprecated(since = "0.6.0", note = "use kernel::gemm with the Strided backend")]
pub fn mul_ijk(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_with(&Strided, 1.0, notrans(a), notrans(b), 0.0, &mut c)?;
    Ok(c)
}

/// Fused `C := C - A·B` in the Equation 7 i-j-k order.
#[deprecated(since = "0.6.0", note = "use kernel::gemm with the Strided backend")]
pub fn sub_mul_ijk(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<()> {
    gemm_with(&Strided, -1.0, notrans(a), notrans(b), 1.0, c)
}

/// `A·B` where the caller supplies `Bᵀ` (the Section 6.3 layout).
#[deprecated(since = "0.6.0", note = "use kernel::gemm with Op::Trans on B")]
pub fn mul_transposed(a: &Matrix, b_t: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b_t.rows());
    gemm_with(&Naive, 1.0, notrans(a), trans(b_t), 0.0, &mut c)?;
    Ok(c)
}

/// Cache-blocked `A·B` (both row-major) with `tile`-sized tiles.
///
/// `tile == 0` is rejected with
/// [`MatrixError::InvalidParameter`](crate::error::MatrixError).
#[deprecated(since = "0.6.0", note = "use kernel::gemm with the Blocked backend")]
pub fn mul_blocked(a: &Matrix, b: &Matrix, tile: usize) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_with(&Blocked { tile }, 1.0, notrans(a), notrans(b), 0.0, &mut c)?;
    Ok(c)
}

/// Parallel `A·B` (now the packed engine with rayon enabled).
#[deprecated(
    since = "0.6.0",
    note = "use kernel::gemm (Packed backend is the default)"
)]
pub fn mul_parallel(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_with(
        &Packed { parallel: true },
        1.0,
        notrans(a),
        notrans(b),
        0.0,
        &mut c,
    )?;
    Ok(c)
}

/// Parallel `A·B` given `Bᵀ`.
#[deprecated(since = "0.6.0", note = "use kernel::gemm with Op::Trans on B")]
pub fn mul_parallel_transposed(a: &Matrix, b_t: &Matrix) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b_t.rows());
    gemm_with(
        &Packed { parallel: true },
        1.0,
        notrans(a),
        trans(b_t),
        0.0,
        &mut c,
    )?;
    Ok(c)
}

/// Fused `C := C - A·B`, the reducer update `A4 - L2'·U2`.
#[deprecated(since = "0.6.0", note = "use kernel::gemm with alpha = -1, beta = 1")]
pub fn sub_mul(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<()> {
    gemm_with(&Naive, -1.0, notrans(a), notrans(b), 1.0, c)
}

/// Fused `C := C - A·B` given `Bᵀ` (Section 6.3 layout).
#[deprecated(since = "0.6.0", note = "use kernel::gemm with Op::Trans on B")]
pub fn sub_mul_transposed(c: &mut Matrix, a: &Matrix, b_t: &Matrix) -> Result<()> {
    gemm_with(&Naive, -1.0, notrans(a), trans(b_t), 1.0, c)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::error::MatrixError;
    use crate::random::random_matrix;

    const TOL: f64 = 1e-9;

    #[test]
    fn naive_small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = mul_naive(&a, &b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn all_kernels_agree_rectangular() {
        let a = random_matrix(13, 21, 2);
        let b = random_matrix(21, 9, 3);
        let reference = mul_naive(&a, &b).unwrap();
        assert!(mul_ijk(&a, &b).unwrap().approx_eq(&reference, TOL));
        assert!(mul_transposed(&a, &b.transpose())
            .unwrap()
            .approx_eq(&reference, TOL));
        assert!(mul_blocked(&a, &b, 4).unwrap().approx_eq(&reference, TOL));
        assert!(mul_blocked(&a, &b, 64).unwrap().approx_eq(&reference, TOL));
        assert!(mul_parallel(&a, &b).unwrap().approx_eq(&reference, TOL));
        assert!(mul_parallel_transposed(&a, &b.transpose())
            .unwrap()
            .approx_eq(&reference, TOL));
    }

    #[test]
    fn blocked_rejects_zero_tile() {
        // Regression: tile = 0 used to assert (and before that, loop
        // forever); it is now a typed error.
        let a = random_matrix(3, 3, 8);
        assert!(matches!(
            mul_blocked(&a, &a, 0),
            Err(MatrixError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(mul_naive(&a, &b).is_err());
        assert!(mul_transposed(&a, &Matrix::zeros(2, 4)).is_err());
        assert!(mul_blocked(&a, &b, 2).is_err());
        assert!(mul_parallel(&a, &b).is_err());
        let mut c = Matrix::zeros(2, 2);
        assert!(sub_mul(&mut c, &a, &b).is_err());
        assert!(sub_mul_transposed(&mut c, &a, &Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    fn sub_mul_matches_explicit() {
        let a = random_matrix(8, 6, 4);
        let b = random_matrix(6, 10, 5);
        let c0 = random_matrix(8, 10, 6);
        let mut c = c0.clone();
        sub_mul(&mut c, &a, &b).unwrap();
        let expect = &c0 - &mul_naive(&a, &b).unwrap();
        assert!(c.approx_eq(&expect, TOL));

        let mut c2 = c0.clone();
        sub_mul_transposed(&mut c2, &a, &b.transpose()).unwrap();
        assert!(c2.approx_eq(&expect, TOL));

        let mut c3 = c0.clone();
        sub_mul_ijk(&mut c3, &a, &b).unwrap();
        assert!(c3.approx_eq(&expect, TOL));
        let mut bad = Matrix::zeros(3, 3);
        assert!(sub_mul_ijk(&mut bad, &a, &b).is_err());
        assert!(mul_ijk(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn sub_mul_output_shape_checked() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(sub_mul(&mut c, &a, &b).is_err());
    }

    #[test]
    fn gemm_flops_counts_two_per_madd() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn empty_products() {
        let a = Matrix::zeros(0, 0);
        let c = mul_naive(&a, &a).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = mul_naive(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
