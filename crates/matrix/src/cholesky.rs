//! Cholesky factorization for symmetric positive-definite matrices — the
//! specialized method of the related work the paper cites (Section 3:
//! Bientinesi, Gunter, van de Geijn invert SPD matrices via Cholesky).
//!
//! `A = G·Gᵀ` with `G` lower triangular costs half the flops of LU
//! (`n³/3` multiply-adds vs `2n³/3`) and needs no pivoting, but only
//! applies to SPD inputs — "it does not work for general matrices", which
//! is why the paper builds on LU. Provided here so the SPD fast path is
//! available to users and benchmarks can quantify the 2× kernel gap.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::kernel::{self, notrans, trans};
use crate::triangular::invert_lower;

/// Cholesky-factorizes an SPD matrix: returns lower-triangular `G` with
/// `A = G·Gᵀ`.
///
/// Returns [`MatrixError::Singular`] when a diagonal entry fails to be
/// positive (the matrix is not positive definite).
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.order()?;
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            // Streaming dot over the already-computed rows.
            let mut acc = a[(i, j)];
            for k in 0..j {
                acc -= g[(i, k)] * g[(j, k)];
            }
            if i == j {
                if acc <= 0.0 {
                    return Err(MatrixError::Singular { step: i });
                }
                g[(i, i)] = acc.sqrt();
            } else {
                g[(i, j)] = acc / g[(j, j)];
            }
        }
    }
    Ok(g)
}

/// Inverts an SPD matrix through Cholesky: `A^-1 = G^-ᵀ·G^-1`.
pub fn invert_spd(a: &Matrix) -> Result<Matrix> {
    let g = cholesky(a)?;
    let g_inv = invert_lower(&g)?;
    // A^-1 = (G^-1)ᵀ (G^-1): the Op::Trans operand is packed row-major by
    // the engine, so no transpose is materialized.
    kernel::mul(trans(&g_inv), notrans(&g_inv))
}

/// Approximate flop count of an order-`n` Cholesky factorization
/// (`n³/3` multiply-adds — half of LU).
pub fn cholesky_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::inversion_residual;
    use crate::random::{random_matrix, random_spd};

    #[test]
    fn factor_reconstructs_a() {
        for &n in &[1usize, 4, 17, 40] {
            let a = random_spd(n, n as u64);
            let g = cholesky(&a).unwrap();
            let ggt = kernel::mul(notrans(&g), trans(&g)).unwrap();
            assert!(ggt.approx_eq(&a, 1e-7 * n as f64), "n={n}");
            for i in 0..n {
                assert!(g[(i, i)] > 0.0);
                for j in (i + 1)..n {
                    assert_eq!(g[(i, j)], 0.0, "strictly lower triangular");
                }
            }
        }
    }

    #[test]
    fn spd_inversion_is_accurate() {
        let a = random_spd(32, 5);
        let inv = invert_spd(&a).unwrap();
        assert!(inversion_residual(&a, &inv).unwrap() < 1e-8);
        // SPD inverses are symmetric.
        assert!(inv.approx_eq(&inv.transpose(), 1e-9));
    }

    #[test]
    fn agrees_with_general_lu_inversion() {
        use crate::lu::lu_decompose;
        use crate::triangular::{invert_lower as il, invert_upper};
        let a = random_spd(24, 6);
        let via_chol = invert_spd(&a).unwrap();
        let f = lu_decompose(&a).unwrap();
        let via_lu = f
            .perm
            .apply_cols(&(&invert_upper(&f.upper()).unwrap() * &il(&f.unit_lower()).unwrap()));
        assert!(via_chol.approx_eq(&via_lu, 1e-7));
    }

    #[test]
    fn rejects_indefinite_matrices() {
        // Symmetric but indefinite: eigenvalues of opposite signs.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(cholesky(&a).is_err());
        // Random non-symmetric general matrices are almost surely not SPD;
        // even if cholesky runs on A's lower triangle, a negative pivot
        // appears quickly.
        let m = random_matrix(12, 12, 3);
        let sym = {
            let mut s = Matrix::zeros(12, 12);
            for i in 0..12 {
                for j in 0..12 {
                    s[(i, j)] = 0.5 * (m[(i, j)] + m[(j, i)]);
                }
            }
            s
        };
        assert!(cholesky(&sym).is_err(), "random symmetric is indefinite");
        assert!(cholesky(&Matrix::zeros(3, 3)).is_err());
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn flop_count_is_half_of_lu() {
        assert_eq!(cholesky_flops(30) * 2, crate::lu::lu_flops(30));
    }
}
