//! Compact representation of the pivot permutation matrix `P`.
//!
//! The paper stores the row permutation in an array `S`, where `[S]_i` is the
//! source row of the permuted matrix's row `i` (Section 4.1): row `i` of
//! `P·A` equals row `S[i]` of `A`. Applying `P` on the right of the final
//! product (`A^-1 = U^-1 L^-1 P`) is a *column* permutation
//! (Section 4.3): column `S[j]` of the result is column `j` of
//! `U^-1 L^-1`.

use crate::dense::Matrix;

/// A row permutation stored as the paper's `S` array.
///
/// Invariant: `s` is a permutation of `0..s.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    s: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            s: (0..n).collect(),
        }
    }

    /// Builds a permutation from an `S` array; panics (debug) if the array
    /// is not a valid permutation.
    pub fn from_vec(s: Vec<usize>) -> Self {
        debug_assert!(Self::is_valid(&s), "not a permutation: {s:?}");
        Permutation { s }
    }

    fn is_valid(s: &[usize]) -> bool {
        let mut seen = vec![false; s.len()];
        s.iter().all(|&v| {
            if v >= s.len() || seen[v] {
                false
            } else {
                seen[v] = true;
                true
            }
        })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Borrow the underlying `S` array.
    pub fn as_slice(&self) -> &[usize] {
        &self.s
    }

    /// Source row for permuted row `i` (`[S]_i`).
    #[inline]
    pub fn source_of(&self, i: usize) -> usize {
        self.s[i]
    }

    /// Swaps entries `a` and `b` (records a pivot row swap).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.s.swap(a, b);
    }

    /// True when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.s.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// The inverse permutation: `inv.source_of(s.source_of(i)) == i`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.s.len()];
        for (i, &v) in self.s.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { s: inv }
    }

    /// Composition `self ∘ other`: applying `other` first, then `self`.
    ///
    /// As matrices, `P_self · P_other`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        let s = self.s.iter().map(|&i| other.s[i]).collect();
        Permutation { s }
    }

    /// Builds a block-diagonal permutation from the top part `p1` (acting on
    /// the first `p1.len()` rows) and the bottom part `p2`.
    ///
    /// This is the paper's augmentation of `P1` and `P2` into the overall
    /// `P` (Equation 5 and Algorithm 2 line 11).
    pub fn augment(p1: &Permutation, p2: &Permutation) -> Permutation {
        let off = p1.len();
        let mut s = Vec::with_capacity(off + p2.len());
        s.extend_from_slice(&p1.s);
        s.extend(p2.s.iter().map(|&v| v + off));
        Permutation { s }
    }

    /// Returns `P·A`: row `i` of the result is row `S[i]` of `a`.
    pub fn apply_rows(&self, a: &Matrix) -> Matrix {
        assert_eq!(self.len(), a.rows(), "permutation/matrix row mismatch");
        let mut out = Matrix::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            out.row_mut(i).copy_from_slice(a.row(self.s[i]));
        }
        out
    }

    /// Returns `A·P`: column `S[j]` of the result is column `j` of `a`
    /// (the final-output permutation of Section 4.3,
    /// `[A^-1]_{·,S[j]} = [U^-1 L^-1]_{·,j}`).
    pub fn apply_cols(&self, a: &Matrix) -> Matrix {
        assert_eq!(self.len(), a.cols(), "permutation/matrix column mismatch");
        let mut out = Matrix::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            let src = a.row(i);
            let dst = out.row_mut(i);
            for (j, &sj) in self.s.iter().enumerate() {
                dst[sj] = src[j];
            }
        }
        out
    }

    /// Sign of the permutation: `+1.0` for even, `-1.0` for odd (the
    /// determinant of `P`, needed for `det(A) = det(P)·det(L)·det(U)`).
    pub fn sign(&self) -> f64 {
        // Count cycles: parity = (-1)^(n - #cycles).
        let n = self.s.len();
        let mut seen = vec![false; n];
        let mut cycles = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            cycles += 1;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.s[i];
            }
        }
        if (n - cycles) % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Materializes the permutation as a dense binary matrix `P`
    /// (`P[i, S[i]] = 1`), so `P·A == apply_rows(A)`.
    pub fn to_matrix(&self) -> Matrix {
        let n = self.len();
        let mut p = Matrix::zeros(n, n);
        for (i, &v) in self.s.iter().enumerate() {
            p[(i, v)] = 1.0;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(p.apply_rows(&a), a);
        assert_eq!(p.apply_cols(&a), a);
    }

    #[test]
    fn apply_rows_matches_dense_p() {
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let via_array = p.apply_rows(&a);
        let via_matrix = &p.to_matrix() * &a;
        assert_eq!(via_array, via_matrix);
        assert_eq!(via_array.row(0), a.row(2));
    }

    #[test]
    fn apply_cols_matches_dense_p() {
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let via_array = p.apply_cols(&a);
        let via_matrix = &a * &p.to_matrix();
        assert_eq!(via_array, via_matrix);
    }

    #[test]
    fn inverse_undoes_row_permutation() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]);
        let a = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let back = p.inverse().apply_rows(&p.apply_rows(&a));
        assert_eq!(back, a);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn compose_matches_matrix_product() {
        let p = Permutation::from_vec(vec![1, 2, 0]);
        let q = Permutation::from_vec(vec![2, 1, 0]);
        let pq = p.compose(&q);
        let dense = &p.to_matrix() * &q.to_matrix();
        assert_eq!(pq.to_matrix(), dense);
    }

    #[test]
    fn augment_is_block_diagonal() {
        let p1 = Permutation::from_vec(vec![1, 0]);
        let p2 = Permutation::from_vec(vec![0, 2, 1]);
        let p = Permutation::augment(&p1, &p2);
        assert_eq!(p.as_slice(), &[1, 0, 2, 4, 3]);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn swap_records_pivot() {
        let mut p = Permutation::identity(3);
        p.swap(0, 2);
        assert_eq!(p.as_slice(), &[2, 1, 0]);
        assert_eq!(p.source_of(0), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn compose_length_mismatch_panics() {
        let p = Permutation::identity(2);
        let q = Permutation::identity(3);
        let _ = p.compose(&q);
    }

    #[test]
    fn sign_matches_transposition_count() {
        assert_eq!(Permutation::identity(5).sign(), 1.0);
        let mut p = Permutation::identity(5);
        p.swap(0, 3);
        assert_eq!(p.sign(), -1.0);
        p.swap(1, 2);
        assert_eq!(p.sign(), 1.0);
        // A 3-cycle is even.
        assert_eq!(Permutation::from_vec(vec![1, 2, 0]).sign(), 1.0);
        // sign(P) * sign(P^-1) = 1.
        let q = Permutation::from_vec(vec![3, 1, 0, 2]);
        assert_eq!(q.sign() * q.inverse().sign(), 1.0);
    }

    #[test]
    fn pa_equals_apply_rows_for_lu_usage() {
        // The LU contract is PA = LU where P is built from the S array.
        let p = Permutation::from_vec(vec![1, 2, 0]);
        let a = Matrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64);
        let pa = p.apply_rows(&a);
        for i in 0..3 {
            assert_eq!(pa.row(i), a.row(p.source_of(i)));
        }
    }
}
